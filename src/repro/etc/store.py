"""Memory-mapped, content-addressed on-disk store of ETC instances.

The experiment grid's natural unit of input is a *stack* of same-shape
ETC instances per cell (see :class:`~repro.etc.batch.ETCBatch`).  Up to
now every consumer materialised those stacks in RAM and every process
boundary re-pickled them; :class:`ETCStore` replaces both with a shared
on-disk substrate:

* **Append-only binary layout.**  One ``data.bin`` file per store holds
  the raw C-order float64 bytes of every committed entry, one entry
  after another; a ``manifest.json`` sidecar records, per entry, the
  byte offset, instance count, shape, labels and a SHA-256 digest of
  the payload.  Nothing is ever rewritten in place — a crashed writer
  leaves at most orphan bytes past the last committed entry, which the
  next writer simply appends after.
* **Content-addressed entries.**  Entries are keyed by caller-chosen
  strings — the grid runner uses the run ledger's SHA-256 *config hash*
  of the cell (:func:`repro.analysis.runner.cell_key`), so the same
  cell in any grid maps to the same entry — and each entry additionally
  records the digest of its own bytes for integrity audits
  (:meth:`ETCStore.verify`).
* **Zero-copy views.**  Readers get :class:`~repro.etc.batch.ETCBatch`
  / :class:`~repro.etc.matrix.ETCMatrix` objects backed by
  ``numpy.memmap`` windows of ``data.bin`` through the trusted
  constructors — no validation re-scan, no copy, resident memory
  bounded by the pages a consumer actually touches.  This is the
  transport the parallel runner's workers attach to by ``(root, key)``
  descriptor instead of receiving pickled matrices.
* **Bounded-memory writes.**  :class:`ETCStoreWriter` accepts instance
  chunks of any size, so :func:`repro.etc.generation.stream_ensemble`
  can fill a store window by window — grid size is limited by disk,
  not RAM.
* **Single-writer locking.**  Writers hold an exclusive ``store.lock``
  (pid-stamped ``O_EXCL`` file) for the duration of a commit; locks
  left behind by dead processes are detected and stolen.  Readers
  never lock.

The store itself emits no observability — callers (the runner) count
``store.*`` on their own tracer — so worker-side reads cannot perturb
the byte-identity of traced cell snapshots.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.etc.batch import ETCBatch
from repro.etc.matrix import (
    ETCMatrix,
    default_machine_labels,
    default_task_labels,
)
from repro.exceptions import ETCShapeError, ETCStoreError, ETCValueError

__all__ = [
    "STORE_SCHEMA",
    "MANIFEST_NAME",
    "DATA_NAME",
    "LOCK_NAME",
    "StoreEntry",
    "ETCStoreWriter",
    "ETCStore",
]

#: Manifest format identifier; bump when the layout changes.
STORE_SCHEMA = "repro-etc-store/1"

MANIFEST_NAME = "manifest.json"
DATA_NAME = "data.bin"
LOCK_NAME = "store.lock"

#: Seconds a writer waits for a live competitor's lock before failing.
DEFAULT_LOCK_TIMEOUT_S = 10.0

_DTYPE = np.dtype(np.float64)


@dataclass(frozen=True)
class StoreEntry:
    """One committed entry: ``count`` stacked ``(num_tasks, num_machines)``
    instances starting at byte ``offset`` of ``data.bin``."""

    key: str
    offset: int
    count: int
    num_tasks: int
    num_machines: int
    sha256: str
    #: ``None`` means the default ``t0..`` / ``m0..`` labels.
    tasks: tuple[str, ...] | None = None
    machines: tuple[str, ...] | None = None

    @property
    def shape(self) -> tuple[int, int, int]:
        return (self.count, self.num_tasks, self.num_machines)

    @property
    def nbytes(self) -> int:
        return self.count * self.num_tasks * self.num_machines * _DTYPE.itemsize

    def task_labels(self) -> tuple[str, ...]:
        return self.tasks if self.tasks is not None else default_task_labels(
            self.num_tasks
        )

    def machine_labels(self) -> tuple[str, ...]:
        return (
            self.machines
            if self.machines is not None
            else default_machine_labels(self.num_machines)
        )

    def to_dict(self) -> dict:
        payload = {
            "offset": self.offset,
            "count": self.count,
            "num_tasks": self.num_tasks,
            "num_machines": self.num_machines,
            "sha256": self.sha256,
        }
        if self.tasks is not None:
            payload["tasks"] = list(self.tasks)
        if self.machines is not None:
            payload["machines"] = list(self.machines)
        return payload

    @classmethod
    def from_dict(cls, key: str, payload: dict) -> "StoreEntry":
        tasks = payload.get("tasks")
        machines = payload.get("machines")
        return cls(
            key=key,
            offset=int(payload["offset"]),
            count=int(payload["count"]),
            num_tasks=int(payload["num_tasks"]),
            num_machines=int(payload["num_machines"]),
            sha256=str(payload["sha256"]),
            tasks=None if tasks is None else tuple(str(t) for t in tasks),
            machines=None if machines is None else tuple(str(m) for m in machines),
        )


class _StoreLock:
    """Pid-stamped exclusive lock file with stale-lock stealing.

    ``O_CREAT | O_EXCL`` is atomic on every filesystem we care about; a
    holder that died without unlinking is detected by probing its pid
    (``os.kill(pid, 0)``) and the lock is stolen.  Purely advisory —
    only :class:`ETCStoreWriter` takes it, readers never do.
    """

    def __init__(self, path: Path, timeout_s: float = DEFAULT_LOCK_TIMEOUT_S) -> None:
        self.path = path
        self.timeout_s = timeout_s
        self._held = False

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except OSError as exc:
            return exc.errno == errno.EPERM
        return True

    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    holder = int(self.path.read_text(encoding="utf-8").strip() or 0)
                except (OSError, ValueError):
                    holder = 0
                if holder and not self._pid_alive(holder):
                    # Stale lock from a dead writer: steal it and retry
                    # the atomic create (another process may be racing
                    # for the same steal, hence the loop).
                    try:
                        self.path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                if time.monotonic() >= deadline:
                    raise ETCStoreError(
                        f"store lock {self.path} held by live pid {holder or '?'} "
                        f"for over {self.timeout_s:g}s"
                    ) from None
                time.sleep(0.05)
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{os.getpid()}\n")
            self._held = True
            return

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __enter__(self) -> "_StoreLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.release()
        return False


class ETCStoreWriter:
    """Append one entry's instances in bounded-memory chunks.

    Obtained from :meth:`ETCStore.writer`; used as a context manager::

        with store.writer(key, num_tasks, num_machines) as writer:
            for chunk in stream_ensemble(...):   # (B, T, M) windows
                writer.append(chunk)

    Bytes go straight to ``data.bin`` as they arrive (the running
    SHA-256 is folded chunk by chunk), so peak memory is one chunk.
    The manifest entry is committed only on a clean ``__exit__`` —
    an abandoned writer (exception, kill) leaves the manifest
    untouched, releases the lock, and its partial bytes become
    harmless orphans that the next append simply writes after.
    """

    def __init__(
        self,
        store: "ETCStore",
        key: str,
        num_tasks: int,
        num_machines: int,
        tasks: Sequence[str] | None,
        machines: Sequence[str] | None,
        lock_timeout_s: float,
    ) -> None:
        self._store = store
        self._key = key
        self._num_tasks = num_tasks
        self._num_machines = num_machines
        self._tasks = None if tasks is None else tuple(str(t) for t in tasks)
        self._machines = (
            None if machines is None else tuple(str(m) for m in machines)
        )
        self._lock = _StoreLock(store.root / LOCK_NAME, lock_timeout_s)
        self._handle = None
        self._offset = 0
        self._count = 0
        self._digest = hashlib.sha256()
        self._closed = False

    def __enter__(self) -> "ETCStoreWriter":
        self._lock.acquire()
        try:
            if self._key in self._store:
                raise ETCStoreError(
                    f"entry {self._key[:16]!r} already committed in "
                    f"{self._store.root}"
                )
            self._handle = open(self._store.data_path, "ab")
            self._offset = self._handle.tell()
        except BaseException:
            self._abort()
            raise
        return self

    def append(self, values: np.ndarray) -> int:
        """Append one ``(T, M)`` instance or a ``(B, T, M)`` chunk.

        Values are validated exactly as :class:`ETCMatrix` would
        (finite, strictly positive) so every view the store later hands
        out through the trusted zero-copy constructors is as safe as a
        validated matrix.  Returns the number of instances appended.
        """
        if self._handle is None or self._closed:
            raise ETCStoreError("writer is not open (use it as a context manager)")
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim == 2:
            arr = arr[None, :, :]
        if arr.ndim != 3:
            raise ETCShapeError(
                f"store chunks must be 2-D or 3-D, got ndim={arr.ndim}"
            )
        if arr.shape[1:] != (self._num_tasks, self._num_machines):
            raise ETCShapeError(
                f"chunk instances have shape {arr.shape[1:]}, entry expects "
                f"({self._num_tasks}, {self._num_machines})"
            )
        if arr.shape[0] == 0:
            return 0
        if not np.all(np.isfinite(arr)):
            raise ETCValueError("ETC values must be finite (no NaN/inf)")
        if np.any(arr <= 0.0):
            raise ETCValueError("ETC values must be strictly positive")
        payload = np.ascontiguousarray(arr).tobytes()
        self._digest.update(payload)
        self._handle.write(payload)
        self._count += arr.shape[0]
        return arr.shape[0]

    @property
    def count(self) -> int:
        """Instances appended so far."""
        return self._count

    def _abort(self) -> None:
        self._closed = True
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._lock.release()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._abort()
            return False
        try:
            if self._count == 0:
                raise ETCStoreError(
                    f"refusing to commit empty entry {self._key[:16]!r}"
                )
            self._handle.flush()
            os.fsync(self._handle.fileno())
            entry = StoreEntry(
                key=self._key,
                offset=self._offset,
                count=self._count,
                num_tasks=self._num_tasks,
                num_machines=self._num_machines,
                sha256=self._digest.hexdigest(),
                tasks=self._tasks,
                machines=self._machines,
            )
            self._store._commit(entry)
        finally:
            self._abort()
        return False


class ETCStore:
    """A directory of memory-mapped ETC instance stacks.

    Parameters
    ----------
    root:
        Store directory (created on first write when ``create=True``).
    create:
        ``False`` attaches read-only semantics: a missing directory or
        manifest raises :class:`~repro.exceptions.ETCStoreError` instead
        of being created (the runner's workers attach this way).
    """

    def __init__(self, root: str | Path, *, create: bool = True) -> None:
        self.root = Path(root)
        self._entries: dict[str, StoreEntry] = {}
        self._manifest_mtime_ns: int | None = None
        self._mmaps: dict[str, np.memmap] = {}
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not (self.root / MANIFEST_NAME).is_file():
            raise ETCStoreError(
                f"no ETC store at {self.root} (missing {MANIFEST_NAME})"
            )
        self._load_manifest()

    # ------------------------------------------------------------------
    # Paths & manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def data_path(self) -> Path:
        return self.root / DATA_NAME

    @property
    def lock_path(self) -> Path:
        return self.root / LOCK_NAME

    def _load_manifest(self) -> None:
        path = self.manifest_path
        try:
            stat = path.stat()
        except FileNotFoundError:
            self._entries = {}
            self._manifest_mtime_ns = None
            return
        if stat.st_mtime_ns == self._manifest_mtime_ns and self._entries:
            return
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            raise ETCStoreError(f"unreadable store manifest {path} ({exc})") from None
        if payload.get("schema") != STORE_SCHEMA:
            raise ETCStoreError(
                f"{path}: not a {STORE_SCHEMA} manifest "
                f"(schema={payload.get('schema')!r})"
            )
        self._entries = {
            key: StoreEntry.from_dict(key, entry)
            for key, entry in payload.get("entries", {}).items()
        }
        self._manifest_mtime_ns = stat.st_mtime_ns

    def reload(self) -> None:
        """Pick up entries committed by another process since open."""
        self._manifest_mtime_ns = None
        self._load_manifest()

    def _commit(self, entry: StoreEntry) -> None:
        """Atomically publish ``entry`` in the manifest (writer-locked)."""
        self._load_manifest()
        entries = dict(self._entries)
        entries[entry.key] = entry
        payload = {
            "schema": STORE_SCHEMA,
            "entries": {key: e.to_dict() for key, e in sorted(entries.items())},
        }
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.manifest_path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._entries = entries
        self._manifest_mtime_ns = self.manifest_path.stat().st_mtime_ns

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def keys(self) -> list[str]:
        """Committed entry keys, sorted."""
        return sorted(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, key: str) -> StoreEntry:
        try:
            return self._entries[key]
        except KeyError:
            raise ETCStoreError(
                f"no entry {key[:16]!r} in store {self.root}"
            ) from None

    def total_bytes(self) -> int:
        """Committed payload bytes (excludes orphans from aborted writes)."""
        return sum(entry.nbytes for entry in self._entries.values())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def writer(
        self,
        key: str,
        num_tasks: int,
        num_machines: int,
        tasks: Sequence[str] | None = None,
        machines: Sequence[str] | None = None,
        lock_timeout_s: float = DEFAULT_LOCK_TIMEOUT_S,
    ) -> ETCStoreWriter:
        """Chunked writer for one new entry (single-writer locked)."""
        if key in self._entries:
            raise ETCStoreError(
                f"entry {key[:16]!r} already committed in {self.root}"
            )
        if num_tasks < 1 or num_machines < 1:
            raise ETCShapeError(
                f"need at least 1 task and machine, got {num_tasks}x{num_machines}"
            )
        return ETCStoreWriter(
            self, key, num_tasks, num_machines, tasks, machines, lock_timeout_s
        )

    def put_matrices(self, key: str, matrices: Sequence[ETCMatrix]) -> StoreEntry:
        """Commit already-materialised matrices as one entry (convenience).

        Labels are recorded only when they differ from the defaults, so
        the manifest stays compact for generated grids.
        """
        matrices = list(matrices)
        if not matrices:
            raise ETCStoreError("cannot store an empty instance list")
        first = matrices[0]
        tasks = None if first.tasks == default_task_labels(first.num_tasks) else first.tasks
        machines = (
            None
            if first.machines == default_machine_labels(first.num_machines)
            else first.machines
        )
        with self.writer(
            key, first.num_tasks, first.num_machines, tasks=tasks, machines=machines
        ) as writer:
            for matrix in matrices:
                if matrix.shape != first.shape:
                    raise ETCShapeError(
                        f"entry matrices disagree on shape: {matrix.shape} "
                        f"!= {first.shape}"
                    )
                if matrix.tasks != first.tasks or matrix.machines != first.machines:
                    raise ETCShapeError(
                        "entry matrices must share task/machine labels"
                    )
                writer.append(matrix.values)
        return self.entry(key)

    # ------------------------------------------------------------------
    # Zero-copy reads
    # ------------------------------------------------------------------
    def _mapped(self, entry: StoreEntry) -> np.memmap:
        mapped = self._mmaps.get(entry.key)
        if mapped is None:
            mapped = np.memmap(
                self.data_path,
                dtype=_DTYPE,
                mode="r",
                offset=entry.offset,
                shape=entry.shape,
                order="C",
            )
            self._mmaps[entry.key] = mapped
        return mapped

    def batch(self, key: str) -> ETCBatch:
        """The whole entry as a memmap-backed :class:`ETCBatch` (no copy)."""
        entry = self.entry(key)
        return ETCBatch._from_trusted(
            self._mapped(entry), entry.task_labels(), entry.machine_labels()
        )

    def instance(self, key: str, index: int) -> ETCMatrix:
        """One instance as a memmap-backed :class:`ETCMatrix` view."""
        return self.batch(key).instance(index)

    def instances(self, key: str) -> Iterator[ETCMatrix]:
        """Iterate an entry's instances as zero-copy memmap views."""
        return self.batch(key).instances()

    def verify(self, key: str) -> bool:
        """Recompute an entry's SHA-256 against the manifest digest."""
        entry = self.entry(key)
        digest = hashlib.sha256()
        with open(self.data_path, "rb") as handle:
            handle.seek(entry.offset)
            remaining = entry.nbytes
            while remaining:
                chunk = handle.read(min(remaining, 1 << 20))
                if not chunk:
                    return False
                digest.update(chunk)
                remaining -= len(chunk)
        return digest.hexdigest() == entry.sha256

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release every open memmap window (idempotent).

        Views handed out earlier keep their own references alive; this
        drops the store's cache so a closed store pins no mappings of
        its own.
        """
        mmaps, self._mmaps = self._mmaps, {}
        for mapped in mmaps.values():
            mm = getattr(mapped, "_mmap", None)
            if mm is None:
                continue
            try:
                mm.close()
            except BufferError:
                # A consumer still holds a view into this window; the
                # mapping is released when that reference dies.
                pass

    def __enter__(self) -> "ETCStore":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"ETCStore({str(self.root)!r}, entries={len(self._entries)})"

"""Batched vectorised kernels for the greedy heuristic family.

The single-instance kernels in :mod:`repro.heuristics.kernels` already
make one instance fast; evaluating the paper's tables — or scheduling a
fleet of independent requests — runs the *same heuristic over N
same-shape ETC instances*.  The kernels here map a whole
:class:`~repro.etc.batch.ETCBatch` in stacked 3-D numpy passes: one
``(batch, tasks, machines)`` completion table, one decision per
instance per step, no Python-level per-instance loop on the hot path.

Every batched decision sequence is **bit-identical** to running the
single-instance kernel in a loop.  The same floating-point identities
the incremental kernels rely on carry over unchanged (completion times
are strictly positive, so the reference tie tolerance
``max(abs_tol, rel_tol * max(|v|, |target|))`` collapses to
``max(abs_tol, rel_tol * v)`` and ``|v - target|`` to ``v - target``),
and every arithmetic step — table build, column refresh, ready-time
update — performs the identical IEEE-754 double operations in the same
order, just across the batch axis.  The property suite in
``tests/properties/test_kernel_equivalence.py`` asserts exact mapping
equality against the looped kernels for every heuristic and backend.

The vectorised paths cover the deterministic tie policy with no tracer
attached (the same precondition as the single-instance fast paths);
:func:`map_batch` transparently falls back to the looped single-instance
kernel otherwise, so random tie policies and obs traces keep their
proven decision streams.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Mapping, ready_time_vector
from repro.core.ties import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    DeterministicTieBreaker,
    TieBreaker,
)
from repro.etc.batch import ETCBatch
from repro.exceptions import ConfigurationError, MappingError
from repro.heuristics.base import Heuristic, get_heuristic
from repro.heuristics.kpb import kpb_subset_size
from repro.obs.tracer import get_tracer

__all__ = [
    "GREEDY_FAMILY",
    "BatchResult",
    "batch_ready_vector",
    "map_batch",
]

#: The greedy-family heuristics with a batched kernel, in paper order.
GREEDY_FAMILY: tuple[str, ...] = (
    "min-min",
    "max-min",
    "mct",
    "met",
    "k-percent-best",
    "sufferage",
)


@dataclass(frozen=True)
class BatchResult:
    """Decision sequences and timings of one batched heuristic run.

    Arrays are indexed ``[instance, step]``: step ``k`` of instance
    ``b`` assigned task row ``task_sequence[b, k]`` to machine column
    ``machine_sequence[b, k]`` starting at ``start_times[b, k]`` and
    finishing at ``completion_times[b, k]`` — exactly the
    ``(task, machine, start, completion, order)`` tuple the
    single-instance :class:`~repro.core.schedule.Assignment` records.
    """

    batch: ETCBatch
    heuristic: str
    task_sequence: np.ndarray  # (B, T) int64 task row per step
    machine_sequence: np.ndarray  # (B, T) int64 machine column per step
    start_times: np.ndarray  # (B, T) float64
    completion_times: np.ndarray  # (B, T) float64
    finish_times: np.ndarray  # (B, M) final machine ready times
    initial_ready: np.ndarray  # (B, M) initial machine ready times

    def makespans(self) -> np.ndarray:
        """Per-instance makespan (largest machine finishing time)."""
        return self.finish_times.max(axis=1)

    def assignment_tuples(
        self, index: int
    ) -> list[tuple[str, str, float, float, int]]:
        """Instance ``index`` decisions as labelled assignment tuples."""
        tasks, machines = self.batch.tasks, self.batch.machines
        return [
            (
                tasks[int(self.task_sequence[index, k])],
                machines[int(self.machine_sequence[index, k])],
                float(self.start_times[index, k]),
                float(self.completion_times[index, k]),
                k,
            )
            for k in range(self.batch.num_tasks)
        ]

    def mapping(self, index: int) -> Mapping:
        """Replay instance ``index`` into a single-instance mapping."""
        out = Mapping(self.batch.instance(index), self.initial_ready[index])
        for k in range(self.batch.num_tasks):
            out.assign_index(
                int(self.task_sequence[index, k]),
                int(self.machine_sequence[index, k]),
            )
        return out

    def mappings(self) -> list[Mapping]:
        """Replay every instance (see :meth:`mapping`)."""
        return [self.mapping(b) for b in range(len(self.batch))]


def batch_ready_vector(
    batch: ETCBatch,
    ready_times: MappingABC[str, float] | Sequence[float] | np.ndarray | None,
) -> np.ndarray:
    """Normalise initial ready times to an owned ``(B, M)`` float array.

    ``None`` (all zeros), a label mapping, or a length-``M`` vector is
    broadcast to every instance; a ``(B, M)`` array gives each instance
    its own vector.  Validation matches the single-instance
    :func:`repro.core.schedule.ready_time_vector` contract.
    """
    size, num_machines = len(batch), batch.num_machines
    arr = None
    if ready_times is not None and not isinstance(ready_times, MappingABC):
        arr = np.asarray(ready_times, dtype=np.float64)
    if arr is not None and arr.ndim == 2:
        if arr.shape != (size, num_machines):
            raise MappingError(
                f"per-instance ready times have shape {arr.shape}, "
                f"expected ({size}, {num_machines})"
            )
        out = arr.copy()
        if np.any(out < 0) or not np.all(np.isfinite(out)):
            raise MappingError("ready times must be finite and non-negative")
        return out
    vec = ready_time_vector(batch.instance(0), ready_times)
    return np.tile(vec, (size, 1))


def map_batch(
    heuristic: str,
    batch: ETCBatch,
    ready_times: MappingABC[str, float] | Sequence[float] | np.ndarray | None = None,
    tie_breaker: TieBreaker | None = None,
    *,
    make=None,
    vectorize: bool = True,
    nominal_size: int | None = None,
    **kwargs,
) -> BatchResult:
    """Map every instance of ``batch`` with ``heuristic``.

    Dispatches to the stacked 3-D kernel when the heuristic has one and
    the preconditions hold (deterministic tie policy, no tracer
    attached), otherwise loops the single-instance kernel built by
    ``make`` (default: :func:`repro.heuristics.base.get_heuristic`).
    Both routes produce identical :class:`BatchResult` contents.

    ``nominal_size`` is the target batch size of the caller's packing
    scheme; when a tracer listens, ``kernels.batch.*`` counters record
    request counts, batch sizes and fill rates against it.
    """
    breaker = tie_breaker if tie_breaker is not None else DeterministicTieBreaker()
    ready0 = batch_ready_vector(batch, ready_times)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.count("kernels.batch.requests")
        tracer.count("kernels.batch.instances", len(batch))
        tracer.observe("kernels.batch.size", float(len(batch)))
        if nominal_size:
            tracer.observe(
                "kernels.batch.fill_pct", 100.0 * len(batch) / nominal_size
            )
    use_kernel = (
        vectorize
        and heuristic in _KERNELS
        and type(breaker) is DeterministicTieBreaker
        and not tracer.enabled
    )
    if not use_kernel:
        if tracer.enabled:
            tracer.count("kernels.batch.fallback")
        return _map_batch_looped(heuristic, batch, ready0, breaker, make, **kwargs)
    return _KERNELS[heuristic](batch, ready0, **kwargs)


def _map_batch_looped(
    heuristic: str,
    batch: ETCBatch,
    ready0: np.ndarray,
    breaker: TieBreaker,
    make,
    **kwargs,
) -> BatchResult:
    """Loop the single-instance kernel; shared breaker, sequential draws."""
    if make is None:
        make = get_heuristic
    instance: Heuristic = make(heuristic, **kwargs)
    mappings = [
        instance.map_tasks(batch.instance(b), ready0[b], breaker)
        for b in range(len(batch))
    ]
    return _result_from_mappings(batch, heuristic, mappings, ready0)


def _result_from_mappings(
    batch: ETCBatch,
    heuristic: str,
    mappings: Sequence[Mapping],
    ready0: np.ndarray,
) -> BatchResult:
    size, num_tasks = len(batch), batch.num_tasks
    task_seq = np.empty((size, num_tasks), dtype=np.int64)
    machine_seq = np.empty((size, num_tasks), dtype=np.int64)
    starts = np.empty((size, num_tasks), dtype=np.float64)
    completions = np.empty((size, num_tasks), dtype=np.float64)
    finish = np.empty((size, batch.num_machines), dtype=np.float64)
    task_of = {t: i for i, t in enumerate(batch.tasks)}
    machine_of = {m: j for j, m in enumerate(batch.machines)}
    for b, mapping in enumerate(mappings):
        for a in mapping.assignments:
            task_seq[b, a.order] = task_of[a.task]
            machine_seq[b, a.order] = machine_of[a.machine]
            starts[b, a.order] = a.start
            completions[b, a.order] = a.completion
        finish[b] = mapping.finish_time_vector()
    return BatchResult(
        batch=batch,
        heuristic=heuristic,
        task_sequence=task_seq,
        machine_sequence=machine_seq,
        start_times=starts,
        completion_times=completions,
        finish_times=finish,
        initial_ready=ready0,
    )


# ----------------------------------------------------------------------
# Stacked kernels (deterministic ties, no tracer)
# ----------------------------------------------------------------------
def _first_tied_min(rows: np.ndarray) -> np.ndarray:
    """Per-row first tolerance-tied minimum index for positive rows.

    The batch-axis twin of
    :func:`repro.heuristics.kernels.first_tied_min_index`: identical
    tolerance arithmetic (``v - target <= max(abs_tol, rel_tol * v)``),
    ``argmax`` over the tie mask picks the first tied column.
    """
    target = rows.min(axis=1)
    tied = (rows - target[:, None]) <= np.maximum(
        DEFAULT_ABS_TOL, DEFAULT_REL_TOL * rows
    )
    return tied.argmax(axis=1)


def _alloc(batch: ETCBatch):
    size, num_tasks = len(batch), batch.num_tasks
    return (
        np.empty((size, num_tasks), dtype=np.int64),
        np.empty((size, num_tasks), dtype=np.int64),
        np.empty((size, num_tasks), dtype=np.float64),
        np.empty((size, num_tasks), dtype=np.float64),
    )


def _two_phase_batch(batch: ETCBatch, ready0: np.ndarray, sign: int) -> BatchResult:
    """Stacked Min-Min (``sign=+1``) / Max-Min (``sign=-1``) kernel.

    Maintains the completion table under single-column refreshes exactly
    like :class:`repro.heuristics.kernels.IncrementalCompletionTable`:
    the refreshed column is recomputed as ``ETC + ready`` (never a
    delta), the stale-row test reads the column *before* the scatter,
    and deactivated rows carry the ``±inf`` sentinel in ``best`` (masked
    by ``active`` where the sentinel would falsely tie).

    The table lives machine-major — ``(batch, machines, tasks)`` — so
    the per-step column gather/scatter touches one *contiguous* lane per
    instance (~5x faster than the strided column access of the natural
    task-major layout); min-reductions are order-free in IEEE
    arithmetic, so the transpose changes no decision.  Elementwise
    scratch buffers are preallocated once and reused across steps.
    """
    values = batch.values
    size, num_tasks, _ = values.shape
    ready = ready0.copy()
    values_mt = np.ascontiguousarray(values.transpose(0, 2, 1))  # (B, M, T)
    table = values_mt + ready[:, :, None]
    best = table.min(axis=1)  # (B, T) per-row minima
    active = np.ones((size, num_tasks), dtype=bool)
    fill = np.inf if sign > 0 else -np.inf
    b_idx = np.arange(size)
    task_seq, machine_seq, starts, completions = _alloc(batch)
    diff = np.empty((size, num_tasks))
    tied = np.empty((size, num_tasks), dtype=bool)
    stale = np.empty((size, num_tasks), dtype=bool)
    mdiff = np.empty((size, batch.num_machines))
    mtol = np.empty((size, batch.num_machines))
    mtied = np.empty((size, batch.num_machines), dtype=bool)
    if sign > 0:
        # Maintained elementwise tolerance max(abs_tol, rel_tol*best):
        # best only changes for deactivated rows (tolerance -1 makes the
        # +inf sentinel's diff of +inf fail the tie test, replacing an
        # explicit active mask) and stale rows (recomputed below), so
        # two full passes per step become a handful of scattered writes.
        tol = np.maximum(DEFAULT_ABS_TOL, DEFAULT_REL_TOL * best)
    for step in range(num_tasks):
        if sign > 0:
            target = best.min(axis=1)
            np.subtract(best, target[:, None], out=diff)
            np.less_equal(diff, tol, out=tied)
        else:
            # The -inf sentinel self-masks: its diff is +inf, never
            # within the finite per-instance scalar tolerance.
            peak = best.max(axis=1)
            scalar_tol = np.maximum(DEFAULT_ABS_TOL, DEFAULT_REL_TOL * np.abs(peak))
            np.subtract(peak[:, None], best, out=diff)
            np.less_equal(diff, scalar_tol[:, None], out=tied)
        tasks = tied.argmax(axis=1)
        rows = table[b_idx, :, tasks]  # (B, M) completion row per instance
        row_target = rows.min(axis=1)
        np.multiply(rows, DEFAULT_REL_TOL, out=mtol)
        np.maximum(mtol, DEFAULT_ABS_TOL, out=mtol)
        np.subtract(rows, row_target[:, None], out=mdiff)
        np.less_equal(mdiff, mtol, out=mtied)
        machines = mtied.argmax(axis=1)
        start = ready[b_idx, machines]
        completion = start + values[b_idx, tasks, machines]
        ready[b_idx, machines] = completion
        task_seq[:, step] = tasks
        machine_seq[:, step] = machines
        starts[:, step] = start
        completions[:, step] = completion
        active[b_idx, tasks] = False
        best[b_idx, tasks] = fill
        if sign > 0:
            tol[b_idx, tasks] = -1.0  # sentinel rows can never tie
        if step + 1 == num_tasks:
            break
        col_old = table[b_idx, machines]  # (B, T) copy of the old column
        np.less_equal(col_old, best, out=stale)
        stale &= active
        table[b_idx, machines] = values_mt[b_idx, machines] + completion[:, None]
        stale_b, stale_t = stale.nonzero()
        if stale_b.size:
            fresh = table[stale_b, :, stale_t].min(axis=1)
            best[stale_b, stale_t] = fresh
            if sign > 0:
                tol[stale_b, stale_t] = np.maximum(
                    DEFAULT_ABS_TOL, DEFAULT_REL_TOL * fresh
                )
    return BatchResult(
        batch=batch,
        heuristic="min-min" if sign > 0 else "max-min",
        task_sequence=task_seq,
        machine_sequence=machine_seq,
        start_times=starts,
        completion_times=completions,
        finish_times=ready,
        initial_ready=ready0,
    )


def _minmin_batch(batch: ETCBatch, ready0: np.ndarray) -> BatchResult:
    return _two_phase_batch(batch, ready0, +1)


def _maxmin_batch(batch: ETCBatch, ready0: np.ndarray) -> BatchResult:
    return _two_phase_batch(batch, ready0, -1)


def _mct_batch(batch: ETCBatch, ready0: np.ndarray) -> BatchResult:
    """Stacked MCT: tasks in row order, one batched machine pick each."""
    values = batch.values
    size, num_tasks, _ = values.shape
    ready = ready0.copy()
    b_idx = np.arange(size)
    task_seq, machine_seq, starts, completions = _alloc(batch)
    for t in range(num_tasks):
        completion = values[:, t, :] + ready
        machines = _first_tied_min(completion)
        start = ready[b_idx, machines]
        finish = completion[b_idx, machines]
        ready[b_idx, machines] = finish
        task_seq[:, t] = t
        machine_seq[:, t] = machines
        starts[:, t] = start
        completions[:, t] = finish
    return BatchResult(
        batch=batch,
        heuristic="mct",
        task_sequence=task_seq,
        machine_sequence=machine_seq,
        start_times=starts,
        completion_times=completions,
        finish_times=ready,
        initial_ready=ready0,
    )


def _met_batch(batch: ETCBatch, ready0: np.ndarray) -> BatchResult:
    """Stacked MET: machine picks are load-oblivious, so every decision
    of every instance comes from one 3-D tie scan over the raw ETC."""
    values = batch.values
    size, num_tasks, _ = values.shape
    target = values.min(axis=2)
    tied = (values - target[:, :, None]) <= np.maximum(
        DEFAULT_ABS_TOL, DEFAULT_REL_TOL * values
    )
    machines = tied.argmax(axis=2)  # (B, T) first tied minimum per row
    ready = ready0.copy()
    b_idx = np.arange(size)
    task_seq, machine_seq, starts, completions = _alloc(batch)
    for t in range(num_tasks):
        m = machines[:, t]
        start = ready[b_idx, m]
        finish = start + values[b_idx, t, m]
        ready[b_idx, m] = finish
        task_seq[:, t] = t
        machine_seq[:, t] = m
        starts[:, t] = start
        completions[:, t] = finish
    return BatchResult(
        batch=batch,
        heuristic="met",
        task_sequence=task_seq,
        machine_sequence=machine_seq,
        start_times=starts,
        completion_times=completions,
        finish_times=ready,
        initial_ready=ready0,
    )


def _kpb_batch(
    batch: ETCBatch, ready0: np.ndarray, percent: float = 70.0
) -> BatchResult:
    """Stacked K-Percent Best: one 3-D stable argsort builds every
    instance's subsets, then MCT restricted to them."""
    percent = float(percent)
    if not 0.0 < percent <= 100.0:
        raise ConfigurationError(f"percent must be in (0, 100], got {percent}")
    values = batch.values
    size, num_tasks, num_machines = values.shape
    subset_size = kpb_subset_size(num_machines, percent)
    subsets = np.sort(
        np.argsort(values, axis=2, kind="stable")[:, :, :subset_size], axis=2
    )
    ready = ready0.copy()
    b_idx = np.arange(size)
    task_seq, machine_seq, starts, completions = _alloc(batch)
    for t in range(num_tasks):
        subset = subsets[:, t, :]  # (B, subset_size)
        completion = np.take_along_axis(values[:, t, :], subset, axis=1)
        completion += np.take_along_axis(ready, subset, axis=1)
        picks = _first_tied_min(completion)
        m = subset[b_idx, picks]
        start = ready[b_idx, m]
        finish = completion[b_idx, picks]
        ready[b_idx, m] = finish
        task_seq[:, t] = t
        machine_seq[:, t] = m
        starts[:, t] = start
        completions[:, t] = finish
    return BatchResult(
        batch=batch,
        heuristic="k-percent-best",
        task_sequence=task_seq,
        machine_sequence=machine_seq,
        start_times=starts,
        completion_times=completions,
        finish_times=ready,
        initial_ready=ready0,
    )


def _sufferage_batch(batch: ETCBatch, ready0: np.ndarray) -> BatchResult:
    """Stacked Sufferage: the dominant first pass (all tasks pending in
    every instance) runs as one 3-D scan; later passes reconsider only
    displaced tasks and reuse the single-instance pass math verbatim.
    """
    from repro.heuristics.sufferage import _fast_decisions

    values = batch.values
    size, num_tasks, num_machines = values.shape
    ready = ready0.copy()
    task_seq, machine_seq, starts, completions = _alloc(batch)
    cursor = [0] * size
    pending: list[list[int]] = [list(range(num_tasks)) for _ in range(size)]

    # Pass 1, batched: identical elementwise tolerance math to
    # repro.heuristics.sufferage._fast_decisions, across the batch axis.
    completion = values + ready[:, None, :]
    best = completion.min(axis=2)
    tied = (completion - best[:, :, None]) <= np.maximum(
        DEFAULT_ABS_TOL, DEFAULT_REL_TOL * completion
    )
    chosen = tied.argmax(axis=2)
    b_idx = np.arange(size)[:, None]
    t_idx = np.arange(num_tasks)[None, :]
    earliest = completion[b_idx, t_idx, chosen]
    if num_machines >= 2:
        completion[b_idx, t_idx, chosen] = np.inf
        sufferage = completion.min(axis=2) - earliest
    else:
        sufferage = np.zeros((size, num_tasks))
    first_pass = [
        list(zip(chosen[b].tolist(), earliest[b].tolist(), sufferage[b].tolist()))
        for b in range(size)
    ]

    for b in range(size):
        per_task = first_pass[b]
        while pending[b]:
            snapshot = list(pending[b])
            if per_task is None:
                per_task = _fast_decisions(values[b], snapshot, ready[b])
            _sufferage_pass(
                b,
                snapshot,
                per_task,
                pending,
                cursor,
                values,
                ready,
                task_seq,
                machine_seq,
                starts,
                completions,
            )
            per_task = None
    return BatchResult(
        batch=batch,
        heuristic="sufferage",
        task_sequence=task_seq,
        machine_sequence=machine_seq,
        start_times=starts,
        completion_times=completions,
        finish_times=ready,
        initial_ready=ready0,
    )


def _sufferage_pass(
    b: int,
    snapshot: list[int],
    per_task: list[tuple[int, float, float]],
    pending: list[list[int]],
    cursor: list[int],
    values: np.ndarray,
    ready: np.ndarray,
    task_seq: np.ndarray,
    machine_seq: np.ndarray,
    starts: np.ndarray,
    completions: np.ndarray,
) -> None:
    """One Sufferage contest + commit for instance ``b``.

    Index-space transcription of the single-instance pass body: the
    snapshot is scanned in task order, displacement requires strictly
    greater sufferage beyond the absolute tolerance, commits land in
    task order and update ready times sequentially through the same
    float arithmetic as :meth:`repro.core.schedule.Mapping.assign_index`.
    """
    holders: dict[int, tuple[int, float]] = {}
    for position, task in enumerate(snapshot):
        machine, _earliest, sufferage = per_task[position]
        incumbent = holders.get(machine)
        if incumbent is None:
            holders[machine] = (task, sufferage)
            pending[b].remove(task)
        elif incumbent[1] < sufferage - DEFAULT_ABS_TOL:
            displaced, _ = incumbent
            holders[machine] = (task, sufferage)
            pending[b].remove(task)
            pending[b].append(displaced)
            pending[b].sort()
        # else: the incumbent keeps the machine (sufferage ties included)
    commits = sorted(
        ((task, machine) for machine, (task, _) in holders.items())
    )
    for task, machine in commits:
        start = float(ready[b, machine])
        finish = start + float(values[b, task, machine])
        ready[b, machine] = finish
        k = cursor[b]
        task_seq[b, k] = task
        machine_seq[b, k] = machine
        starts[b, k] = start
        completions[b, k] = finish
        cursor[b] = k + 1


_KERNELS = {
    "min-min": _minmin_batch,
    "max-min": _maxmin_batch,
    "mct": _mct_batch,
    "met": _met_batch,
    "k-percent-best": _kpb_batch,
    "sufferage": _sufferage_batch,
}

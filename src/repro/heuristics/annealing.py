"""Simulated Annealing mapper (Braun et al. heuristic suite).

The paper's heuristic pool comes from the eleven-heuristic comparison
of Braun et al. (JPDC 2001); SA is one of the iterative search members
of that suite and a useful mid-point between the greedy mappers and
Genitor.  This implementation follows the Braun et al. setup:

* the state is a complete assignment vector, initialised uniformly at
  random (or from a seed mapping);
* a *move* reassigns one uniformly-chosen task to a uniformly-chosen
  machine;
* a worse neighbour is accepted with probability
  ``exp(-(new - old) / T)``; the temperature starts at the initial
  makespan and is multiplied by ``cooling`` after every step;
* the search stops after ``steps`` moves or when the temperature
  underflows; the best state ever visited is returned (elitism — Braun
  et al. track the final state, but returning the best-so-far is the
  standard strengthening and never worse).

Like Genitor, SA supports seeding natively, so it slots into the
paper's iterative technique with the "improvement or no change"
guarantee when seeded.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Mapping, finish_times_for_vector
from repro.core.ties import TieBreaker
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, register_heuristic

__all__ = ["SimulatedAnnealing"]


@register_heuristic
class SimulatedAnnealing(Heuristic):
    """Makespan-minimising simulated annealing over assignment vectors."""

    name = "simulated-annealing"
    supports_seeding = True

    def __init__(
        self,
        steps: int = 2000,
        cooling: float = 0.99,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if steps < 0:
            raise ConfigurationError(f"steps must be >= 0, got {steps}")
        if not 0.0 < cooling < 1.0:
            raise ConfigurationError(f"cooling must be in (0, 1), got {cooling}")
        self.steps = int(steps)
        self.cooling = float(cooling)
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        ready = mapping.initial_ready_times()
        rng = self._rng
        num_tasks, num_machines = etc.shape

        if seed_mapping is not None:
            state = np.array(
                [etc.machine_index(seed_mapping[t]) for t in etc.tasks],
                dtype=np.int64,
            )
        else:
            state = rng.integers(0, num_machines, size=num_tasks, dtype=np.int64)

        finish = finish_times_for_vector(etc, state, ready)
        energy = float(finish.max())
        best_state, best_energy = state.copy(), energy
        temperature = max(energy, 1e-9)

        for _ in range(self.steps):
            task = int(rng.integers(0, num_tasks))
            new_machine = int(rng.integers(0, num_machines))
            old_machine = int(state[task])
            if new_machine == old_machine:
                temperature *= self.cooling
                continue
            # incremental finish-time update: only two machines change
            delta_old = finish[old_machine] - etc.values[task, old_machine]
            delta_new = finish[new_machine] + etc.values[task, new_machine]
            new_finish = finish.copy()
            new_finish[old_machine] = delta_old
            new_finish[new_machine] = delta_new
            new_energy = float(new_finish.max())
            accept = new_energy <= energy or rng.random() < np.exp(
                -(new_energy - energy) / max(temperature, 1e-12)
            )
            if accept:
                state[task] = new_machine
                finish = new_finish
                energy = new_energy
                if energy < best_energy:
                    best_state, best_energy = state.copy(), energy
            temperature *= self.cooling
            if temperature < 1e-12:
                break

        for task_idx, machine_idx in enumerate(best_state):
            mapping.assign(etc.tasks[task_idx], etc.machines[int(machine_idx)])

    def __repr__(self) -> str:
        return f"SimulatedAnnealing(steps={self.steps}, cooling={self.cooling})"

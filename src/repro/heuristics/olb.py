"""Opportunistic Load Balancing (OLB) baseline (Braun et al.).

OLB assigns each task, in task-list order, to the machine that becomes
*ready* soonest — regardless of the task's ETC on that machine.  It is
the classic load-balancing-without-heterogeneity-awareness baseline the
HC literature compares against; not analysed in the paper but included
for the cross-heuristic study (DESIGN.md E24).
"""

from __future__ import annotations

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker
from repro.heuristics.base import Heuristic, register_heuristic

__all__ = ["OLB"]


@register_heuristic
class OLB(Heuristic):
    """Opportunistic Load Balancing: each task to the earliest-ready machine."""

    name = "olb"

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        for task in etc.tasks:
            ready = mapping.ready_times()
            machine_idx = tie_breaker.argmin(ready)
            mapping.assign(task, etc.machines[machine_idx])

"""Uniformly random mapping baseline.

Assigns each task to a machine drawn uniformly at random from a seeded
generator.  Serves as the statistical floor for the cross-heuristic
study and as the chromosome initialiser for Genitor's population.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker
from repro.heuristics.base import Heuristic, register_heuristic

__all__ = ["RandomMapper"]


@register_heuristic
class RandomMapper(Heuristic):
    """Each task to a uniformly random machine (seeded)."""

    name = "random"

    def __init__(self, rng: np.random.Generator | int | None = None) -> None:
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        choices = self._rng.integers(0, etc.num_machines, size=etc.num_tasks)
        for task, machine_idx in zip(etc.tasks, choices):
            mapping.assign(task, etc.machines[int(machine_idx)])

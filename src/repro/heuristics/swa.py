"""Switching Algorithm (SWA) (Maheswaran et al.) — paper Figure 13.

Procedure (verbatim structure):

1. A task list is generated that includes all unmapped tasks in a given
   arbitrary order.
2. The first task in the list is mapped using the MCT heuristic.
3. The load balance index (BI) is calculated for the system
   (minimum ready time / maximum ready time).
4. The heuristic used to map the next task is determined as follows:

   i.   if BI > high threshold, the MET heuristic is selected for
        future tasks;
   ii.  if BI < low threshold, the MCT heuristic is selected for future
        tasks;
   iii. otherwise, the currently selected heuristic remains selected.

5. Steps 3–4 are repeated until all tasks have been mapped.

SWA cycles between MET (fast machines, unbalances load) while the
system is balanced and MCT (rebalances) when it drifts apart — a hybrid
designed for dynamic environments.

Threshold defaults: the paper's example states the high threshold is
0.49; the low-threshold digits are lost in the source text but its BI
trace (see DESIGN.md) pins it to the interval (4/13, 0.49) — we default
to 0.40 and make both configurable.  When the maximum ready time is 0
(all machines idle) the BI is undefined — shown as ``x`` in paper
Tables 10–11 — and the current heuristic is kept.

The per-task (BI, heuristic, machine) trace is kept on
:attr:`SwitchingAlgorithm.last_trace` for paper Tables 10–11.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker, tied_argmin
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, register_heuristic
from repro.obs.tracer import get_tracer

__all__ = ["SwitchingAlgorithm", "SWAStep", "balance_index"]


def balance_index(ready_times) -> float:
    """Load balance index: min ready time / max ready time.

    Returns ``nan`` when the maximum ready time is zero (undefined —
    the ``x`` entries of paper Tables 10–11).
    """
    lo = min(ready_times)
    hi = max(ready_times)
    if hi <= 0.0:
        return math.nan
    return lo / hi


@dataclass(frozen=True)
class SWAStep:
    """One task's decision: the BI observed and the heuristic applied.

    ``bi`` is the balance index computed *before* mapping the task
    (``nan`` while undefined), matching the row layout of paper
    Tables 10 and 11.
    """

    task: str
    bi: float
    heuristic: str  # "mct" or "met"
    machine: str
    completion: float


@register_heuristic
class SwitchingAlgorithm(Heuristic):
    """SWA: hybrid of MCT and MET driven by the load balance index."""

    name = "switching-algorithm"

    def __init__(self, low: float = 0.40, high: float = 0.49) -> None:
        if not 0.0 <= low < high <= 1.0:
            raise ConfigurationError(
                f"thresholds must satisfy 0 <= low < high <= 1, got "
                f"low={low}, high={high}"
            )
        self.low = float(low)
        self.high = float(high)
        self.last_trace: tuple[SWAStep, ...] = ()

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        tracer = get_tracer()
        current = "mct"  # step 2: the first task is mapped using MCT
        trace: list[SWAStep] = []
        for i, task in enumerate(etc.tasks):
            previous = current
            if i == 0:
                bi = math.nan
            else:
                bi = balance_index(mapping.ready_times())
                if not math.isnan(bi):
                    if bi > self.high:
                        current = "met"
                    elif bi < self.low:
                        current = "mct"
            if current == "mct":
                scores = mapping.completion_times_if(task)
            else:
                scores = etc.task_row(task)
            machine_idx = tie_breaker.choose(tied_argmin(scores))
            assignment = mapping.assign(task, etc.machines[machine_idx])
            if tracer.enabled:
                if current != previous:
                    tracer.event(
                        "switching-algorithm.switch",
                        task=task,
                        bi=bi,
                        selected=current,
                    )
                tracer.event(
                    "switching-algorithm.decision",
                    task=task,
                    bi=bi,
                    heuristic=current,
                    machine=assignment.machine,
                    completion=assignment.completion,
                )
                tracer.count("decisions")
            trace.append(
                SWAStep(
                    task=task,
                    bi=bi,
                    heuristic=current,
                    machine=assignment.machine,
                    completion=assignment.completion,
                )
            )
        self.last_trace = tuple(trace)

    def __repr__(self) -> str:
        return f"SwitchingAlgorithm(low={self.low}, high={self.high})"

"""Genitor steady-state genetic algorithm (Whitley) — paper Figure 1.

Procedure (verbatim structure):

1. An initial population of mappings is generated.
2. The mappings in the population are ordered based on makespan.
3. While the stopping criteria are not met:

   a. Two chromosomes are randomly selected to act as parents for
      crossover:

      i.   a random cut-off point is generated;
      ii.  the machine assignments of the tasks below the cut-off point
           are exchanged (producing two offspring);
      iii. the offspring are inserted into the sorted population based
           on their makespan, and the worst chromosomes are removed
           (population size stays fixed).

   b. A chromosome is randomly selected for mutation:

      i.  a random task is chosen and its machine assignment is
          arbitrarily modified;
      ii. the offspring is inserted into the sorted population and the
          worst chromosome is removed.

4. The best solution is output.

Chromosomes are dense machine-index vectors; fitness (makespan) is
evaluated with the vectorised kernel
:func:`repro.core.schedule.finish_times_for_vector` (hpc guide:
vectorise the hot loop — fitness evaluation dominates the run time).

**Seeding** (paper Section 3.1): "the mapping found by Genitor in the
previous iteration, excluding the makespan machine and the tasks
assigned to it, is seeded into the population of the current
iteration.  The ranking in Genitor guarantees that the final mapping is
either the seeded mapping or a mapping with a smaller makespan" — so
for Genitor the iterative technique yields an improvement or no change.
Because only the worst chromosomes are ever removed, the best makespan
is monotone non-increasing, which makes that guarantee structural.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC

import numpy as np

from repro.core.schedule import Mapping, finish_times_for_vector
from repro.core.ties import TieBreaker
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, register_heuristic

__all__ = ["Genitor"]


@register_heuristic
class Genitor(Heuristic):
    """Steady-state GA minimising makespan over assignment chromosomes.

    Parameters
    ----------
    population_size:
        Number of chromosomes kept (rank-sorted by makespan).
    iterations:
        Number of steady-state steps; each step performs one crossover
        (two offspring) and one mutation (one offspring).
    stall_limit:
        Optional early stop after this many steps without improvement
        of the best makespan (``None`` disables).
    rng:
        Seeded generator; all stochastic decisions flow through it.
    """

    name = "genitor"
    supports_seeding = True

    def __init__(
        self,
        population_size: int = 50,
        iterations: int = 1000,
        stall_limit: int | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if population_size < 2:
            raise ConfigurationError(
                f"population_size must be >= 2, got {population_size}"
            )
        if iterations < 0:
            raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
        if stall_limit is not None and stall_limit < 1:
            raise ConfigurationError(f"stall_limit must be >= 1, got {stall_limit}")
        self.population_size = int(population_size)
        self.iterations = int(iterations)
        self.stall_limit = stall_limit
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    # ------------------------------------------------------------------
    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        best = self.evolve(mapping, seed_mapping)
        for task_idx, machine_idx in enumerate(best):
            mapping.assign(etc.tasks[task_idx], etc.machines[int(machine_idx)])

    def evolve(
        self,
        mapping: Mapping,
        seed_mapping: MappingABC[str, str] | None = None,
    ) -> np.ndarray:
        """Run the GA and return the best chromosome (machine per task row)."""
        etc = mapping.etc
        ready = mapping.initial_ready_times()
        num_tasks, num_machines = etc.shape
        rng = self._rng

        # Step 1: initial random population (plus the seed chromosome).
        population = rng.integers(
            0, num_machines, size=(self.population_size, num_tasks), dtype=np.int64
        )
        if seed_mapping is not None:
            seed_vec = np.array(
                [etc.machine_index(seed_mapping[t]) for t in etc.tasks],
                dtype=np.int64,
            )
            population[0] = seed_vec
        fitness = np.array(
            [self._makespan(etc, chrom, ready) for chrom in population]
        )
        # Step 2: order the population by makespan (rank sort, best first).
        order = np.argsort(fitness, kind="stable")
        population = population[order]
        fitness = fitness[order]

        stall = 0
        for _ in range(self.iterations):
            best_before = fitness[0]
            # Step 3a: crossover of two random parents at a random cut.
            pa, pb = rng.integers(0, self.population_size, size=2)
            cut = int(rng.integers(1, num_tasks)) if num_tasks > 1 else 0
            child1 = population[pa].copy()
            child2 = population[pb].copy()
            if cut > 0:
                child1[:cut], child2[:cut] = (
                    population[pb][:cut].copy(),
                    population[pa][:cut].copy(),
                )
            population, fitness = self._insert(
                etc, ready, population, fitness, (child1, child2)
            )
            # Step 3b: mutation of one random chromosome at one random task.
            pm = rng.integers(0, self.population_size)
            mutant = population[pm].copy()
            gene = int(rng.integers(0, num_tasks))
            mutant[gene] = rng.integers(0, num_machines)
            population, fitness = self._insert(etc, ready, population, fitness, (mutant,))

            if self.stall_limit is not None:
                stall = 0 if fitness[0] < best_before else stall + 1
                if stall >= self.stall_limit:
                    break
        # Step 4: the best solution is output.
        return population[0]

    # ------------------------------------------------------------------
    def _insert(
        self,
        etc,
        ready: np.ndarray,
        population: np.ndarray,
        fitness: np.ndarray,
        offspring: tuple[np.ndarray, ...],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Rank-insert offspring; drop the worst to keep the size fixed."""
        child_fit = np.array([self._makespan(etc, c, ready) for c in offspring])
        merged = np.vstack([population, np.stack(offspring)])
        merged_fit = np.concatenate([fitness, child_fit])
        order = np.argsort(merged_fit, kind="stable")[: self.population_size]
        return merged[order], merged_fit[order]

    @staticmethod
    def _makespan(etc, chromosome: np.ndarray, ready: np.ndarray) -> float:
        return float(finish_times_for_vector(etc, chromosome, ready).max())

    def __repr__(self) -> str:
        return (
            f"Genitor(population_size={self.population_size}, "
            f"iterations={self.iterations}, stall_limit={self.stall_limit})"
        )

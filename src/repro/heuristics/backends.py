"""Pluggable kernel backends for the heuristic family.

Three kernel generations coexist in this codebase: the *reference*
implementations that transcribe the paper's figures line by line, the
*incremental* single-instance kernels of
:mod:`repro.heuristics.kernels`, and the *batched* stacked 3-D kernels
of :mod:`repro.heuristics.batched`.  This module gives them one seam: a
:class:`KernelBackend` builds single-instance heuristics
(:meth:`KernelBackend.make`) and maps whole batches
(:meth:`KernelBackend.map_batch`), and a registry resolves backends by
name — ``reference | incremental | batched`` today, a compiled backend
tomorrow — so call sites (experiment runner, study pipeline, CLI,
bench) select kernels without touching heuristic code.

All backends are *decision-identical*: they differ only in how fast
they arrive at the same mappings, which the equivalence battery in
``tests/properties/test_kernel_equivalence.py`` enforces.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping as MappingABC
from collections.abc import Sequence

import numpy as np

from repro.core.ties import TieBreaker
from repro.etc.batch import ETCBatch
from repro.exceptions import UnknownBackendError
from repro.heuristics.base import Heuristic, get_heuristic
from repro.heuristics.batched import BatchResult, map_batch

__all__ = [
    "DEFAULT_BACKEND",
    "KERNELED_HEURISTICS",
    "KernelBackend",
    "ReferenceBackend",
    "IncrementalBackend",
    "BatchedBackend",
    "register_backend",
    "get_backend",
    "backend_names",
]

#: The default backend: the incremental single-instance kernels.
DEFAULT_BACKEND = "incremental"

#: Heuristics that accept an ``incremental=`` kernel toggle; the
#: reference backend forces it off for these.
KERNELED_HEURISTICS = frozenset(
    {"min-min", "max-min", "duplex", "mct", "k-percent-best", "sufferage"}
)


class KernelBackend(abc.ABC):
    """One kernel generation: builds heuristics and maps batches."""

    #: Registry name; set by concrete backends.
    name: str = ""

    @abc.abstractmethod
    def make(self, heuristic: str, **kwargs) -> Heuristic:
        """Build a single-instance heuristic wired to this backend."""

    def map_batch(
        self,
        heuristic: str,
        batch: ETCBatch,
        ready_times: MappingABC[str, float] | Sequence[float] | np.ndarray | None = None,
        tie_breaker: TieBreaker | None = None,
        *,
        nominal_size: int | None = None,
        **kwargs,
    ) -> BatchResult:
        """Map every instance of ``batch`` (looped unless overridden)."""
        return map_batch(
            heuristic,
            batch,
            ready_times,
            tie_breaker,
            make=self.make,
            vectorize=False,
            nominal_size=nominal_size,
            **kwargs,
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class ReferenceBackend(KernelBackend):
    """The paper-transcription kernels (``incremental=False``)."""

    name = "reference"

    def make(self, heuristic: str, **kwargs) -> Heuristic:
        if heuristic in KERNELED_HEURISTICS:
            kwargs.setdefault("incremental", False)
        return get_heuristic(heuristic, **kwargs)


class IncrementalBackend(KernelBackend):
    """The default single-instance kernels (``incremental=True``)."""

    name = "incremental"

    def make(self, heuristic: str, **kwargs) -> Heuristic:
        return get_heuristic(heuristic, **kwargs)


class BatchedBackend(IncrementalBackend):
    """Stacked 3-D kernels for batches; incremental for single calls.

    :meth:`map_batch` vectorises across the batch axis when the
    heuristic has a stacked kernel and the preconditions hold
    (deterministic ties, no tracer); otherwise it falls back to looping
    the incremental kernel — recorded by the ``kernels.batch.fallback``
    counter when a tracer listens.
    """

    name = "batched"

    def map_batch(
        self,
        heuristic: str,
        batch: ETCBatch,
        ready_times: MappingABC[str, float] | Sequence[float] | np.ndarray | None = None,
        tie_breaker: TieBreaker | None = None,
        *,
        nominal_size: int | None = None,
        **kwargs,
    ) -> BatchResult:
        return map_batch(
            heuristic,
            batch,
            ready_times,
            tie_breaker,
            make=self.make,
            vectorize=True,
            nominal_size=nominal_size,
            **kwargs,
        )


_BACKENDS: dict[str, KernelBackend] = {}


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register ``backend`` under ``backend.name`` (latest wins)."""
    if not backend.name:
        raise UnknownBackendError("backend must define a non-empty name")
    _BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str | KernelBackend) -> KernelBackend:
    """Resolve a backend by name; instances pass through unchanged."""
    if isinstance(name, KernelBackend):
        return name
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise UnknownBackendError(
            f"unknown kernel backend {name!r}; known backends: {known}"
        ) from None


def backend_names() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


register_backend(ReferenceBackend())
register_backend(IncrementalBackend())
register_backend(BatchedBackend())

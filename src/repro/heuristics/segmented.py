"""Segmented Min-Min (Wu & Shu, HCW 2000 — the paper's reference [18]).

Min-Min favours short tasks early, which can strand long tasks on
loaded machines; Segmented Min-Min counteracts this by sorting tasks by
a per-task key (average / minimum / maximum ETC, descending), splitting
the sorted list into N equal segments, and running Min-Min on each
segment in turn (ready times carry across segments).  With one segment
it degenerates to plain Min-Min over the whole task set.

Wu & Shu report Segmented Min-Min beating Min-Min chiefly on
*consistent* ETC matrices with many tasks; the cross-heuristic bench
reproduces that shape.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker, tied_argmin
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, register_heuristic

__all__ = ["SegmentedMinMin"]

_KEYS = ("average", "minimum", "maximum")


@register_heuristic
class SegmentedMinMin(Heuristic):
    """Segmented Min-Min: sort by ETC key, split, Min-Min per segment.

    Parameters
    ----------
    segments:
        Number of equal-size segments (last one takes the remainder).
    key:
        Per-task sort key: ``"average"`` (Wu & Shu's Smm-avg, default),
        ``"minimum"`` (Smm-min) or ``"maximum"`` (Smm-max).  Tasks are
        processed in *descending* key order so expensive tasks are
        placed while machines are still lightly loaded.
    """

    name = "segmented-min-min"

    def __init__(self, segments: int = 4, key: str = "average") -> None:
        if segments < 1:
            raise ConfigurationError(f"segments must be >= 1, got {segments}")
        if key not in _KEYS:
            raise ConfigurationError(f"key must be one of {_KEYS}, got {key!r}")
        self.segments = int(segments)
        self.key = key

    def _sort_keys(self, values: np.ndarray) -> np.ndarray:
        if self.key == "average":
            return values.mean(axis=1)
        if self.key == "minimum":
            return values.min(axis=1)
        return values.max(axis=1)

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        keys = self._sort_keys(etc.values)
        # descending by key; stable so equal keys keep task-list order
        order = np.argsort(-keys, kind="stable")
        segment_count = min(self.segments, etc.num_tasks)
        segments = np.array_split(order, segment_count)
        for segment in segments:
            self._minmin_segment(mapping, tie_breaker, [int(i) for i in segment])

    @staticmethod
    def _minmin_segment(
        mapping: Mapping, tie_breaker: TieBreaker, task_indices: list[int]
    ) -> None:
        """Plain Min-Min restricted to the given task rows."""
        etc = mapping.etc
        values = etc.values
        remaining = list(task_indices)
        while remaining:
            ready = mapping.ready_times()
            completion = values[remaining] + ready[None, :]
            best_ct = completion.min(axis=1)
            pos = int(tied_argmin(best_ct).min())  # oldest-task pair tie
            machine_idx = tie_breaker.choose(tied_argmin(completion[pos]))
            mapping.assign(etc.tasks[remaining[pos]], etc.machines[machine_idx])
            remaining.pop(pos)

    def __repr__(self) -> str:
        return f"SegmentedMinMin(segments={self.segments}, key={self.key!r})"

"""Tabu-search mapper (Braun et al. heuristic suite).

A short-hop local search with a tabu memory, following the Braun et al.
structure:

* state = complete assignment vector (random or seeded start);
* a *short hop* evaluates single-task reassignments in a fixed scan
  order and commits the first strict improvement found;
* when no improving short hop exists, the current (locally optimal)
  solution's machine-assignment pattern is added to the tabu list and a
  *long hop* restarts the search from a new random state whose pattern
  is not tabu;
* the search stops after ``max_hops`` total successful hops (short +
  long); the best local optimum encountered is returned.

Like Genitor and SA, supports seeding, so the iterative technique with
seeding never worsens.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Mapping, finish_times_for_vector
from repro.core.ties import TieBreaker
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, register_heuristic

__all__ = ["TabuSearch"]


@register_heuristic
class TabuSearch(Heuristic):
    """Makespan-minimising tabu search over assignment vectors."""

    name = "tabu-search"
    supports_seeding = True

    def __init__(
        self,
        max_hops: int = 1000,
        tabu_size: int = 16,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if max_hops < 0:
            raise ConfigurationError(f"max_hops must be >= 0, got {max_hops}")
        if tabu_size < 1:
            raise ConfigurationError(f"tabu_size must be >= 1, got {tabu_size}")
        self.max_hops = int(max_hops)
        self.tabu_size = int(tabu_size)
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        ready = mapping.initial_ready_times()
        rng = self._rng
        num_tasks, num_machines = etc.shape

        if seed_mapping is not None:
            state = np.array(
                [etc.machine_index(seed_mapping[t]) for t in etc.tasks],
                dtype=np.int64,
            )
        else:
            state = rng.integers(0, num_machines, size=num_tasks, dtype=np.int64)

        best_state = state.copy()
        best_energy = self._energy(etc, state, ready)
        tabu: list[bytes] = []
        hops = 0

        while hops < self.max_hops:
            improved, state = self._short_hop(etc, state, ready)
            hops += 1
            if improved:
                energy = self._energy(etc, state, ready)
                if energy < best_energy:
                    best_state, best_energy = state.copy(), energy
                continue
            # local optimum: remember its pattern, then long hop
            tabu.append(state.tobytes())
            if len(tabu) > self.tabu_size:
                tabu.pop(0)
            state = self._long_hop(rng, num_tasks, num_machines, tabu)
            energy = self._energy(etc, state, ready)
            if energy < best_energy:
                best_state, best_energy = state.copy(), energy

        for task_idx, machine_idx in enumerate(best_state):
            mapping.assign(etc.tasks[task_idx], etc.machines[int(machine_idx)])

    # ------------------------------------------------------------------
    @staticmethod
    def _energy(etc, state: np.ndarray, ready: np.ndarray) -> float:
        return float(finish_times_for_vector(etc, state, ready).max())

    def _short_hop(
        self, etc, state: np.ndarray, ready: np.ndarray
    ) -> tuple[bool, np.ndarray]:
        """Commit the first improving single-task reassignment, if any."""
        finish = finish_times_for_vector(etc, state, ready)
        energy = float(finish.max())
        for task in range(etc.num_tasks):
            old_machine = int(state[task])
            for new_machine in range(etc.num_machines):
                if new_machine == old_machine:
                    continue
                new_old = finish[old_machine] - etc.values[task, old_machine]
                new_new = finish[new_machine] + etc.values[task, new_machine]
                others = np.delete(finish, [old_machine, new_machine])
                new_energy = max(
                    new_old, new_new, float(others.max()) if others.size else 0.0
                )
                if new_energy < energy - 1e-12:
                    out = state.copy()
                    out[task] = new_machine
                    return True, out
        return False, state

    @staticmethod
    def _long_hop(
        rng: np.random.Generator,
        num_tasks: int,
        num_machines: int,
        tabu: list[bytes],
    ) -> np.ndarray:
        """A fresh random state whose pattern is not in the tabu list."""
        for _ in range(64):
            candidate = rng.integers(0, num_machines, size=num_tasks, dtype=np.int64)
            if candidate.tobytes() not in tabu:
                return candidate
        return rng.integers(0, num_machines, size=num_tasks, dtype=np.int64)

    def __repr__(self) -> str:
        return f"TabuSearch(max_hops={self.max_hops}, tabu_size={self.tabu_size})"

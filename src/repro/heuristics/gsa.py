"""Genetic Simulated Annealing (GSA) mapper (Braun et al. suite).

GSA combines the GA's population operators with SA's probabilistic
acceptance: the search runs like Genitor (crossover + mutation on a
rank-sorted population), but an offspring competes against the *worst*
member of the population under a simulated-annealing test — a worse
offspring still replaces it with probability ``exp(-Δ/T)``, with the
system temperature cooling geometrically.  This lets the population
accept diversity early and converge late.

Supports seeding (like Genitor and SA), so it inherits the iterative
technique's "improvement or no change" guarantee when seeded — with the
caveat that GSA's *population* can degrade mid-run; the best-ever
chromosome is tracked separately and returned, which restores the
guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Mapping, finish_times_for_vector
from repro.core.ties import TieBreaker
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, register_heuristic

__all__ = ["GeneticSimulatedAnnealing"]


@register_heuristic
class GeneticSimulatedAnnealing(Heuristic):
    """GA operators with SA acceptance against the worst member."""

    name = "gsa"
    supports_seeding = True

    def __init__(
        self,
        population_size: int = 30,
        iterations: int = 500,
        cooling: float = 0.99,
        rng: np.random.Generator | int | None = None,
    ) -> None:
        if population_size < 2:
            raise ConfigurationError(
                f"population_size must be >= 2, got {population_size}"
            )
        if iterations < 0:
            raise ConfigurationError(f"iterations must be >= 0, got {iterations}")
        if not 0.0 < cooling < 1.0:
            raise ConfigurationError(f"cooling must be in (0, 1), got {cooling}")
        self.population_size = int(population_size)
        self.iterations = int(iterations)
        self.cooling = float(cooling)
        self._rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        ready = mapping.initial_ready_times()
        rng = self._rng
        num_tasks, num_machines = etc.shape

        population = rng.integers(
            0, num_machines, size=(self.population_size, num_tasks), dtype=np.int64
        )
        if seed_mapping is not None:
            population[0] = np.array(
                [etc.machine_index(seed_mapping[t]) for t in etc.tasks],
                dtype=np.int64,
            )
        fitness = np.array(
            [self._makespan(etc, chrom, ready) for chrom in population]
        )
        order = np.argsort(fitness, kind="stable")
        population, fitness = population[order], fitness[order]

        best_state = population[0].copy()
        best_energy = float(fitness[0])
        temperature = max(best_energy, 1e-9)

        for _ in range(self.iterations):
            # GA step: crossover of two random parents, then mutation.
            pa, pb = rng.integers(0, self.population_size, size=2)
            cut = int(rng.integers(1, num_tasks)) if num_tasks > 1 else 0
            child = population[pa].copy()
            if cut > 0:
                child[:cut] = population[pb][:cut]
            gene = int(rng.integers(0, num_tasks))
            child[gene] = rng.integers(0, num_machines)
            child_fit = self._makespan(etc, child, ready)
            # SA acceptance against the current worst member.
            worst = float(fitness[-1])
            accept = child_fit <= worst or rng.random() < np.exp(
                -(child_fit - worst) / max(temperature, 1e-12)
            )
            if accept:
                insert = int(np.searchsorted(fitness[:-1], child_fit))
                population = np.vstack(
                    [population[:insert], child[None, :], population[insert:-1]]
                )
                fitness = np.concatenate(
                    [fitness[:insert], [child_fit], fitness[insert:-1]]
                )
                if child_fit < best_energy:
                    best_state, best_energy = child.copy(), float(child_fit)
            temperature *= self.cooling

        for task_idx, machine_idx in enumerate(best_state):
            mapping.assign(etc.tasks[task_idx], etc.machines[int(machine_idx)])

    @staticmethod
    def _makespan(etc, chromosome: np.ndarray, ready: np.ndarray) -> float:
        return float(finish_times_for_vector(etc, chromosome, ready).max())

    def __repr__(self) -> str:
        return (
            f"GeneticSimulatedAnnealing(population_size={self.population_size}, "
            f"iterations={self.iterations}, cooling={self.cooling})"
        )

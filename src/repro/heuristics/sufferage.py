"""Sufferage heuristic (Maheswaran et al.; Casanova et al.) — paper Figure 17.

Procedure (verbatim structure):

1. A task list ``L`` is generated that includes all unmapped tasks in a
   given arbitrary order.
2. While there are still unmapped tasks:

   i.   Mark all machines as unassigned.
   ii.  For each task ``t_k`` in ``L``:

        a. The machine ``m_j`` that gives the earliest completion time
           is found.
        b. The *sufferage value* is calculated (second earliest
           completion time minus earliest completion time).
        c. If machine ``m_j`` is unassigned then assign ``t_k`` to
           ``m_j``, delete ``t_k`` from ``L`` and mark ``m_j`` as
           assigned.  Otherwise, if the sufferage value of the task
           ``t_i`` already assigned to ``m_j`` is less than the
           sufferage value of ``t_k``, then unassign ``t_i``, add
           ``t_i`` back to ``L``, assign ``t_k`` to ``m_j`` and remove
           ``t_k`` from ``L``.

   iii. The ready times for all machines are updated.

Conventions (documented, needed for the paper's examples):

* a pass iterates over a snapshot of ``L`` in original task-list order;
  tasks displaced mid-pass re-enter ``L`` (keeping original order) and
  are reconsidered in the *next* pass;
* with a single remaining machine the sufferage value is 0 (there is no
  second-earliest completion time);
* the incumbent keeps the machine on sufferage ties (the paper's
  condition is strictly "less than");
* earliest-completion machine ties go through the tie-breaking policy.

The per-pass decision trace is kept on :attr:`Sufferage.last_trace` so
the bench harness can regenerate the per-pass rows of paper Tables 16
and 17.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Mapping
from repro.core.ties import (
    DEFAULT_ABS_TOL,
    DEFAULT_REL_TOL,
    DeterministicTieBreaker,
    TieBreaker,
    tied_argmin,
)
from repro.heuristics.base import Heuristic, register_heuristic
from repro.obs.tracer import get_tracer

__all__ = ["Sufferage", "SufferageDecision", "SufferagePass"]


@dataclass(frozen=True)
class SufferageDecision:
    """One task's examination within a pass.

    ``outcome`` is one of ``"claimed"`` (machine was free),
    ``"displaced"`` (evicted the incumbent), ``"rejected"`` (incumbent
    kept the machine).
    """

    task: str
    machine: str
    earliest_ct: float
    sufferage: float
    outcome: str
    displaced_task: str | None = None


@dataclass(frozen=True)
class SufferagePass:
    """All decisions of one while-loop pass plus the commits it made."""

    index: int
    decisions: tuple[SufferageDecision, ...]
    committed: tuple[tuple[str, str], ...]  # (task, machine) pairs


@register_heuristic
class Sufferage(Heuristic):
    """Sufferage: greedy with limited local search via sufferage contests."""

    name = "sufferage"

    def __init__(self, *, incremental: bool = True) -> None:
        #: Use the maintained completion-table kernel (default); the
        #: per-pass rebuild reference path is kept for equivalence tests.
        self.incremental = bool(incremental)
        self.last_trace: tuple[SufferagePass, ...] = ()

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        if self.incremental:
            self._run_incremental(mapping, tie_breaker)
        else:
            self._run_reference(mapping, tie_breaker)

    def _run_incremental(self, mapping: Mapping, tie_breaker: TieBreaker) -> None:
        """Streamlined kernel: fused pass scan, index-space commits.

        Sufferage commits one task per machine per pass, so *every*
        ready time changes between passes and an incrementally
        maintained table would be refreshed wholesale — no asymptotic
        win (unlike Min-Min's one-column-per-round structure).  The
        savings here are constant-factor but real: the pass scan in
        :func:`_fast_decisions` exploits positivity to halve the
        elementwise passes of the reference tolerance math, and commits
        go through the index-space :meth:`Mapping.assign_index` against
        the live ready-time view.
        """
        etc = mapping.etc
        tracer = get_tracer()
        order = {t: i for i, t in enumerate(etc.tasks)}
        machine_col = {m: j for j, m in enumerate(etc.machines)}
        values = etc.values
        ready = mapping.ready_times_view()
        pending: list[str] = list(etc.tasks)
        passes: list[SufferagePass] = []
        pass_index = 0
        # The deterministic policy admits a fully vectorised scan (the
        # measured hot path at scale — see the scaling bench); other
        # policies take the per-task route so genuine ties still flow
        # through the TieBreaker one decision at a time.
        fast_path = type(tie_breaker) is DeterministicTieBreaker
        while pending:
            snapshot = list(pending)
            per_task = (
                _fast_decisions(values, [order[t] for t in snapshot], ready)
                if fast_path
                else None
            )
            # machine label -> (task, sufferage) tentative holder
            holders: dict[str, tuple[str, float]] = {}
            decisions: list[SufferageDecision] = []
            for position, task in enumerate(snapshot):
                if per_task is not None:
                    machine_idx, earliest, sufferage = per_task[position]
                else:
                    completion = mapping.completion_times_if(task)
                    machine_idx = tie_breaker.choose(tied_argmin(completion))
                    earliest = float(completion[machine_idx])
                    sufferage = _sufferage_value(completion, machine_idx)
                machine = etc.machines[machine_idx]
                incumbent = holders.get(machine)
                if incumbent is None:
                    holders[machine] = (task, sufferage)
                    pending.remove(task)
                    decisions.append(
                        SufferageDecision(task, machine, earliest, sufferage, "claimed")
                    )
                elif incumbent[1] < sufferage - DEFAULT_ABS_TOL:
                    displaced, _ = incumbent
                    holders[machine] = (task, sufferage)
                    pending.remove(task)
                    pending.append(displaced)
                    pending.sort(key=order.__getitem__)
                    decisions.append(
                        SufferageDecision(
                            task,
                            machine,
                            earliest,
                            sufferage,
                            "displaced",
                            displaced_task=displaced,
                        )
                    )
                else:
                    decisions.append(
                        SufferageDecision(
                            task,
                            machine,
                            earliest,
                            sufferage,
                            "rejected",
                            displaced_task=incumbent[0],
                        )
                    )
            # Step iii: commit this pass's holders, then ready times update.
            commits = sorted(
                ((task, machine) for machine, (task, _) in holders.items()),
                key=lambda pair: order[pair[0]],
            )
            for task, machine in commits:
                mapping.assign_index(order[task], machine_col[machine])
            if tracer.enabled:
                for d in decisions:
                    tracer.event(
                        "sufferage.decision",
                        pass_index=pass_index,
                        task=d.task,
                        machine=d.machine,
                        earliest_ct=d.earliest_ct,
                        sufferage=d.sufferage,
                        outcome=d.outcome,
                        displaced_task=d.displaced_task,
                    )
                    tracer.count("decisions")
                tracer.event(
                    "sufferage.pass",
                    index=pass_index,
                    committed=tuple(commits),
                )
            passes.append(
                SufferagePass(pass_index, tuple(decisions), tuple(commits))
            )
            pass_index += 1
        self.last_trace = tuple(passes)

    def _run_reference(self, mapping: Mapping, tie_breaker: TieBreaker) -> None:
        etc = mapping.etc
        tracer = get_tracer()
        order = {t: i for i, t in enumerate(etc.tasks)}
        pending: list[str] = list(etc.tasks)
        passes: list[SufferagePass] = []
        pass_index = 0
        fast_path = type(tie_breaker) is DeterministicTieBreaker
        while pending:
            snapshot = list(pending)
            per_task = (
                _vectorised_decisions(mapping, snapshot) if fast_path else None
            )
            # machine label -> (task, sufferage) tentative holder
            holders: dict[str, tuple[str, float]] = {}
            decisions: list[SufferageDecision] = []
            for position, task in enumerate(snapshot):
                if per_task is not None:
                    machine_idx, earliest, sufferage = per_task[position]
                else:
                    completion = mapping.completion_times_if(task)
                    machine_idx = tie_breaker.choose(tied_argmin(completion))
                    earliest = float(completion[machine_idx])
                    sufferage = _sufferage_value(completion, machine_idx)
                machine = etc.machines[machine_idx]
                incumbent = holders.get(machine)
                if incumbent is None:
                    holders[machine] = (task, sufferage)
                    pending.remove(task)
                    decisions.append(
                        SufferageDecision(task, machine, earliest, sufferage, "claimed")
                    )
                elif incumbent[1] < sufferage - DEFAULT_ABS_TOL:
                    displaced, _ = incumbent
                    holders[machine] = (task, sufferage)
                    pending.remove(task)
                    pending.append(displaced)
                    pending.sort(key=order.__getitem__)
                    decisions.append(
                        SufferageDecision(
                            task,
                            machine,
                            earliest,
                            sufferage,
                            "displaced",
                            displaced_task=displaced,
                        )
                    )
                else:
                    decisions.append(
                        SufferageDecision(
                            task,
                            machine,
                            earliest,
                            sufferage,
                            "rejected",
                            displaced_task=incumbent[0],
                        )
                    )
            # Step iii: commit this pass's holders, then ready times update.
            commits = sorted(
                ((task, machine) for machine, (task, _) in holders.items()),
                key=lambda pair: order[pair[0]],
            )
            for task, machine in commits:
                mapping.assign(task, machine)
            if tracer.enabled:
                for d in decisions:
                    tracer.event(
                        "sufferage.decision",
                        pass_index=pass_index,
                        task=d.task,
                        machine=d.machine,
                        earliest_ct=d.earliest_ct,
                        sufferage=d.sufferage,
                        outcome=d.outcome,
                        displaced_task=d.displaced_task,
                    )
                    tracer.count("decisions")
                tracer.event(
                    "sufferage.pass",
                    index=pass_index,
                    committed=tuple(commits),
                )
            passes.append(
                SufferagePass(pass_index, tuple(decisions), tuple(commits))
            )
            pass_index += 1
        self.last_trace = tuple(passes)


def _sufferage_value(completion: np.ndarray, best_idx: int) -> float:
    """Second-earliest CT minus earliest CT; 0 with a single machine."""
    if completion.size < 2:
        return 0.0
    rest = np.delete(completion, best_idx)
    return float(rest.min() - completion[best_idx])


def _fast_decisions(
    values: np.ndarray, rows: list[int], ready: np.ndarray
) -> list[tuple[int, float, float]]:
    """:func:`_vectorised_decisions` with positivity-exact tolerance math.

    Completion times are strictly positive (positive ETC, non-negative
    ready times) and every entry is ``>=`` its row minimum, so the
    reference tolerance scale ``max(|completion|, |best|)`` is exactly
    ``completion`` and ``|completion - best|`` is exactly
    ``completion - best`` — the same booleans from half the elementwise
    passes.  The gathered ``completion`` buffer is owned, so the
    second-minimum masking happens in place instead of on a copy.
    """
    completion = values[rows] + ready[None, :]
    best = completion.min(axis=1)
    tied = (completion - best[:, None]) <= np.maximum(
        DEFAULT_ABS_TOL, DEFAULT_REL_TOL * completion
    )
    chosen = tied.argmax(axis=1)  # first tolerance-tied minimum per row
    idx = np.arange(len(rows))
    earliest = completion[idx, chosen]
    if completion.shape[1] >= 2:
        completion[idx, chosen] = np.inf
        sufferage = completion.min(axis=1) - earliest
    else:
        sufferage = np.zeros(len(rows))
    return list(zip(chosen.tolist(), earliest.tolist(), sufferage.tolist()))


def _vectorised_decisions(
    mapping: Mapping, snapshot: list[str]
) -> list[tuple[int, float, float]]:
    """Per-task (machine index, earliest CT, sufferage) for a whole pass.

    Ready times are fixed within a Sufferage pass, so every task's best
    machine and sufferage value are independent of the scan order — the
    full ``(pending x machines)`` table vectorises.  The machine choice
    reproduces the deterministic policy exactly: lowest index among the
    *tolerance-tied* minima (not plain ``argmin``, which would diverge
    from the per-task path on float-noise ties).
    """
    etc = mapping.etc
    rows = [etc.task_index(t) for t in snapshot]
    completion = etc.values[rows] + mapping.ready_times()[None, :]
    best = completion.min(axis=1)
    tol = np.maximum(
        DEFAULT_ABS_TOL,
        DEFAULT_REL_TOL * np.maximum(np.abs(completion), np.abs(best)[:, None]),
    )
    tied = np.abs(completion - best[:, None]) <= tol
    chosen = tied.argmax(axis=1)  # first tolerance-tied minimum per row
    earliest = completion[np.arange(len(rows)), chosen]
    if completion.shape[1] >= 2:
        # sufferage uses exact values: second smallest excluding the
        # chosen column (paper: "second earliest completion time")
        masked = completion.copy()
        masked[np.arange(len(rows)), chosen] = np.inf
        sufferage = masked.min(axis=1) - earliest
    else:
        sufferage = np.zeros(len(rows))
    return [
        (int(chosen[k]), float(earliest[k]), float(sufferage[k]))
        for k in range(len(rows))
    ]

"""Minimum Execution Time (MET) heuristic — paper Figure 8.

Procedure (verbatim structure):

1. A task list is generated that includes all unmapped tasks in a given
   arbitrary order (we use ETC row order).
2. The first task in the list is mapped to its minimum *execution* time
   machine — machine load (ready time) is ignored entirely.
3. The task is removed from the list.
4. Steps 2–3 are repeated until all tasks have been mapped.

MET is O(T·M) and load-oblivious, so it can pile every task onto one
fast machine; the paper proves its mapping never changes across
iterations of the iterative technique under deterministic ties
(Section 3.4) and shows by example that random tie-breaking can
increase makespan.
"""

from __future__ import annotations

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker, tied_argmin
from repro.heuristics.base import Heuristic, register_heuristic
from repro.obs.tracer import get_tracer

__all__ = ["MET"]


@register_heuristic
class MET(Heuristic):
    """Minimum Execution Time: each task to its fastest machine."""

    name = "met"

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        tracer = get_tracer()
        for task in etc.tasks:
            row = etc.task_row(task)
            candidates = tied_argmin(row)
            machine_idx = tie_breaker.choose(candidates)
            assignment = mapping.assign(task, etc.machines[machine_idx])
            if tracer.enabled:
                tracer.event(
                    "met.decision",
                    task=task,
                    machine=assignment.machine,
                    execution=float(row[machine_idx]),
                    completion=assignment.completion,
                    tied=tuple(etc.machines[int(j)] for j in candidates),
                )
                tracer.count("decisions")
                tracer.observe("decision.tie_candidates", len(candidates))

"""K-Percent Best heuristic (Maheswaran et al.) — paper Figure 14.

Procedure (verbatim structure):

1. A task list is generated that includes all unmapped tasks in a given
   arbitrary order.
2. A subset is formed by picking the ``M * (k/100)`` best machines
   based on the execution times for the task.
3. The task is assigned to a machine that provides the earliest
   completion time in the subset.
4. The task is removed from the unmapped task list.
5. The ready time of the machine on which the task is mapped is updated.
6. Steps 2–5 are repeated until all tasks have been mapped.

Subset sizing convention: ``floor(M * k / 100)`` clamped to ``[1, M]``.
The paper's example fixes this: with ``k = 70%`` and 3 machines "the
best two machines are used", and with 2 machines "only one machine is
considered" (1.4 → 1), which "forces the K-percent Best Algorithm to
perform like the MET heuristic".  With ``k = 100%`` KPB is identical to
MCT; with ``k = 100/M %`` it is identical to MET (paper Section 3.6).

ETC ties at the subset boundary resolve to the lower machine index
(stable sort); completion-time ties inside the subset go through the
tie-breaking policy.  The per-task subset trace is kept on
:attr:`KPercentBest.last_trace` for paper Tables 13–14.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Mapping
from repro.core.ties import DeterministicTieBreaker, TieBreaker, tied_argmin
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.kernels import first_tied_min_index, tied_min_indices
from repro.obs.tracer import get_tracer

__all__ = ["KPercentBest", "KPBStep", "kpb_subset_size"]


def kpb_subset_size(num_machines: int, percent: float) -> int:
    """Number of machines in the K-percent subset: ``floor(M*k/100)`` in [1, M]."""
    if num_machines < 1:
        raise ConfigurationError(f"need at least one machine, got {num_machines}")
    raw = math.floor(num_machines * percent / 100.0)
    return max(1, min(num_machines, raw))


@dataclass(frozen=True)
class KPBStep:
    """One task's decision: the subset considered and the machine chosen."""

    task: str
    subset: tuple[str, ...]
    machine: str
    completion: float


@register_heuristic
class KPercentBest(Heuristic):
    """K-Percent Best: MCT restricted to each task's k% fastest machines."""

    name = "k-percent-best"

    def __init__(self, percent: float = 70.0, *, incremental: bool = True) -> None:
        if not 0.0 < percent <= 100.0:
            raise ConfigurationError(
                f"percent must be in (0, 100], got {percent}"
            )
        self.percent = float(percent)
        #: Use the batched-subset kernel (default); the per-task argsort
        #: reference path is kept for equivalence tests.
        self.incremental = bool(incremental)
        self.last_trace: tuple[KPBStep, ...] = ()

    def subset_for(self, etc: ETCMatrix, task: str) -> tuple[str, ...]:
        """The k% best machines for ``task`` by execution time."""
        size = kpb_subset_size(etc.num_machines, self.percent)
        row = etc.task_row(task)
        best = np.argsort(row, kind="stable")[:size]
        return tuple(etc.machines[int(j)] for j in best)

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        if self.incremental:
            self._run_incremental(mapping, tie_breaker)
        else:
            self._run_reference(mapping, tie_breaker)

    def _run_incremental(self, mapping: Mapping, tie_breaker: TieBreaker) -> None:
        """Batched kernel: subsets depend only on ETC values, so all T
        per-task argsorts collapse into one vectorised axis-1 argsort."""
        etc = mapping.etc
        tracer = get_tracer()
        values = etc.values
        machines = etc.machines
        size = kpb_subset_size(etc.num_machines, self.percent)
        subsets = np.sort(
            np.argsort(values, axis=1, kind="stable")[:, :size], axis=1
        )
        subset_lists = subsets.tolist()
        ready = mapping.ready_times_view()
        trace: list[KPBStep] = []
        fast_ties = (
            type(tie_breaker) is DeterministicTieBreaker and not tracer.enabled
        )
        for ti, task in enumerate(etc.tasks):
            subset_idx = subsets[ti]
            completion = values[ti, subset_idx] + ready[subset_idx]
            if fast_ties:
                pick = first_tied_min_index(completion)
            else:
                pick = tie_breaker.choose(tied_min_indices(completion))
            machine_idx = subset_lists[ti][pick]
            assignment = mapping.assign_index(ti, machine_idx)
            subset = tuple(machines[j] for j in subset_lists[ti])
            if tracer.enabled:
                tracer.event(
                    "k-percent-best.decision",
                    task=task,
                    subset=subset,
                    subset_size=size,
                    machine=assignment.machine,
                    completion=assignment.completion,
                )
                tracer.count("decisions")
                tracer.observe("kpb.subset_size", size)
            trace.append(
                KPBStep(
                    task=task,
                    subset=subset,
                    machine=assignment.machine,
                    completion=assignment.completion,
                )
            )
        self.last_trace = tuple(trace)

    def _run_reference(self, mapping: Mapping, tie_breaker: TieBreaker) -> None:
        etc = mapping.etc
        tracer = get_tracer()
        size = kpb_subset_size(etc.num_machines, self.percent)
        trace: list[KPBStep] = []
        for task in etc.tasks:
            row = etc.task_row(task)
            subset_idx = np.sort(np.argsort(row, kind="stable")[:size])
            completion = row[subset_idx] + mapping.ready_times()[subset_idx]
            pick = tie_breaker.choose(tied_argmin(completion))
            machine_idx = int(subset_idx[pick])
            assignment = mapping.assign(task, etc.machines[machine_idx])
            subset = tuple(etc.machines[int(j)] for j in subset_idx)
            if tracer.enabled:
                tracer.event(
                    "k-percent-best.decision",
                    task=task,
                    subset=subset,
                    subset_size=size,
                    machine=assignment.machine,
                    completion=assignment.completion,
                )
                tracer.count("decisions")
                tracer.observe("kpb.subset_size", size)
            trace.append(
                KPBStep(
                    task=task,
                    subset=subset,
                    machine=assignment.machine,
                    completion=assignment.completion,
                )
            )
        self.last_trace = tuple(trace)

    def __repr__(self) -> str:
        return f"KPercentBest(percent={self.percent})"

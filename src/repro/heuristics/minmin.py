"""Min-Min heuristic (Ibarra & Kim) — paper Figure 2.

Procedure (verbatim structure):

1. A task list is generated that includes all the tasks as unmapped
   tasks.
2. For each task in the task list, the machine that gives the task its
   minimum completion time (*first Min*) is determined (ignoring other
   unmapped tasks).
3. Among all task-machine pairs found in 2, the pair that has the
   minimum completion time (*second Min*) is determined.
4. The task selected in 3 is removed from the task list and is mapped
   to the paired machine.
5. The ready time of the machine on which the task is mapped is updated.
6. Steps 2–5 are repeated until all tasks have been mapped.

Tie handling: *task* ties across pairs (second Min) always go to the
oldest (earliest-listed) task — the paper's canonical deterministic
example ("the oldest task is chosen", Section 2) — while *machine* ties
within the selected task (first Min) are resolved by the supplied
tie-breaking policy.  The worked example in Tables 1–3 exercises exactly
such a machine tie; under the deterministic policy both kinds of tie are
deterministic, as the Theorem in Section 3.2 requires.

The default kernel maintains the completion-time table *incrementally*
(see :mod:`repro.heuristics.kernels`): after each assignment only the
changed ready-time column and the row minima it held are recomputed —
O(T + M) typical per round instead of a fresh O(T·M) table rebuild —
while remaining decision-for-decision identical (tie-candidate sets,
tie-breaker draw order, obs events) to the retained reference kernel,
selectable with ``MinMin(incremental=False)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Mapping
from repro.core.ties import DeterministicTieBreaker, TieBreaker, tied_argmin
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.kernels import (
    IncrementalCompletionTable,
    first_tied_min_index,
    oldest_extremal_row,
    tied_min_indices,
)
from repro.obs.tracer import get_tracer

__all__ = ["MinMin", "MaxMin", "Duplex"]


class _TwoPhaseGreedy(Heuristic):
    """Shared machinery for Min-Min and Max-Min.

    Subclasses choose how the second phase selects among the per-task
    best completion times (min for Min-Min, max for Max-Min).
    """

    #: +1 selects the smallest per-task best CT (Min-Min), -1 the largest.
    _second_phase_sign: float = +1.0

    def __init__(self, *, incremental: bool = True) -> None:
        #: Use the incremental completion-table kernel (default); the
        #: reference per-round rebuild is kept for equivalence tests.
        self.incremental = bool(incremental)

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        if self.incremental:
            self._run_incremental(mapping, tie_breaker)
        else:
            self._run_reference(mapping, tie_breaker)

    def _run_incremental(self, mapping: Mapping, tie_breaker: TieBreaker) -> None:
        """Incremental kernel: one column refresh per committed pair."""
        etc = mapping.etc
        tracer = get_tracer()
        tasks, machines = etc.tasks, etc.machines
        sign = +1 if self._second_phase_sign > 0 else -1
        table = IncrementalCompletionTable(
            etc.values,
            mapping.ready_times_view(),
            fill=np.inf if sign > 0 else -np.inf,
        )
        # With the deterministic policy and no tracer listening, the
        # machine choice is just the first tolerance-tied index — no
        # candidate list, no policy dispatch (identical decision).
        fast_ties = (
            type(tie_breaker) is DeterministicTieBreaker and not tracer.enabled
        )
        for _ in range(etc.num_tasks):
            task_idx = oldest_extremal_row(table, sign)
            row = table.table[task_idx]
            if fast_ties:
                machine_idx = first_tied_min_index(row)
            else:
                candidates = tied_min_indices(row)
                machine_idx = tie_breaker.choose(candidates)
            assignment = mapping.assign_index(task_idx, machine_idx)
            if tracer.enabled:
                tracer.event(
                    f"{self.name}.decision",
                    task=tasks[task_idx],
                    machine=machines[machine_idx],
                    completion=float(row[machine_idx]),
                    tied=tuple(machines[int(j)] for j in candidates),
                )
                tracer.count("decisions")
                tracer.observe("decision.tie_candidates", len(candidates))
            table.deactivate(task_idx)
            table.refresh_column(machine_idx, assignment.completion)

    def _run_reference(self, mapping: Mapping, tie_breaker: TieBreaker) -> None:
        """Reference kernel: rebuild the full table every round."""
        etc = mapping.etc
        tracer = get_tracer()
        unmapped = list(range(etc.num_tasks))  # row indices, oldest first
        values = etc.values
        while unmapped:
            ready = mapping.ready_times()
            # Phase 1 (first Min): per-task minimum completion time.
            completion = values[unmapped] + ready[None, :]
            best_ct = completion.min(axis=1)
            # Phase 2 (second Min / Max): select the extremal pair; pair
            # ties go to the oldest task (deterministic, per Section 2).
            signed = self._second_phase_sign * best_ct
            task_pos = int(tied_argmin(signed).min())
            task_idx = unmapped[task_pos]
            # Resolve the machine tie *for the selected task only*, so a
            # random policy consumes draws in the order the paper's
            # examples assume (one machine decision per mapped task).
            candidates = tied_argmin(completion[task_pos])
            machine_idx = tie_breaker.choose(candidates)
            mapping.assign(etc.tasks[task_idx], etc.machines[machine_idx])
            if tracer.enabled:
                tracer.event(
                    f"{self.name}.decision",
                    task=etc.tasks[task_idx],
                    machine=etc.machines[machine_idx],
                    completion=float(completion[task_pos, machine_idx]),
                    tied=tuple(etc.machines[int(j)] for j in candidates),
                )
                tracer.count("decisions")
                tracer.observe("decision.tie_candidates", len(candidates))
            unmapped.pop(task_pos)


@register_heuristic
class MinMin(_TwoPhaseGreedy):
    """Min-Min: repeatedly commit the globally earliest-finishing pair."""

    name = "min-min"
    _second_phase_sign = +1.0


@register_heuristic
class MaxMin(_TwoPhaseGreedy):
    """Max-Min baseline: commit the pair whose best finish is *latest*.

    Not analysed in the paper but the canonical sibling of Min-Min
    (Ibarra & Kim; Braun et al.); used by the cross-heuristic study.
    """

    name = "max-min"
    _second_phase_sign = -1.0


@register_heuristic
class Duplex(Heuristic):
    """Duplex baseline: run Min-Min and Max-Min, keep the better makespan.

    From Braun et al.; ties in makespan go to Min-Min.  Random policies
    draw from the same stream sequentially (Min-Min first).
    """

    name = "duplex"

    def __init__(self, *, incremental: bool = True) -> None:
        self.incremental = bool(incremental)

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        ready = mapping.initial_ready_times()
        min_map = MinMin(incremental=self.incremental).map_tasks(
            etc, ready, tie_breaker
        )
        max_map = MaxMin(incremental=self.incremental).map_tasks(
            etc, ready, tie_breaker
        )
        winner = min_map if min_map.makespan() <= max_map.makespan() else max_map
        for assignment in winner.assignments:
            mapping.assign(assignment.task, assignment.machine)


def minmin_round_table(mapping_so_far: Mapping) -> np.ndarray:
    """Completion-time table for the *next* Min-Min round (diagnostics).

    Returns the ``(num_unmapped, num_machines)`` CT matrix the heuristic
    would inspect, in unmapped-task order — the quantity the paper's
    Table 2/3 rows display per resource allocation step.
    """
    etc = mapping_so_far.etc
    rows = [etc.task_index(t) for t in mapping_so_far.unmapped_tasks()]
    return etc.values[rows] + mapping_so_far.ready_times()[None, :]


__all__.append("minmin_round_table")

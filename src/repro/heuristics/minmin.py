"""Min-Min heuristic (Ibarra & Kim) — paper Figure 2.

Procedure (verbatim structure):

1. A task list is generated that includes all the tasks as unmapped
   tasks.
2. For each task in the task list, the machine that gives the task its
   minimum completion time (*first Min*) is determined (ignoring other
   unmapped tasks).
3. Among all task-machine pairs found in 2, the pair that has the
   minimum completion time (*second Min*) is determined.
4. The task selected in 3 is removed from the task list and is mapped
   to the paired machine.
5. The ready time of the machine on which the task is mapped is updated.
6. Steps 2–5 are repeated until all tasks have been mapped.

Tie handling: *task* ties across pairs (second Min) always go to the
oldest (earliest-listed) task — the paper's canonical deterministic
example ("the oldest task is chosen", Section 2) — while *machine* ties
within the selected task (first Min) are resolved by the supplied
tie-breaking policy.  The worked example in Tables 1–3 exercises exactly
such a machine tie; under the deterministic policy both kinds of tie are
deterministic, as the Theorem in Section 3.2 requires.

The inner scans are vectorised over machines and over the unmapped task
set (hpc guide: vectorise hot loops), giving O(T·M) work per round.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker, tied_argmin
from repro.heuristics.base import Heuristic, register_heuristic
from repro.obs.tracer import get_tracer

__all__ = ["MinMin", "MaxMin", "Duplex"]


class _TwoPhaseGreedy(Heuristic):
    """Shared machinery for Min-Min and Max-Min.

    Subclasses choose how the second phase selects among the per-task
    best completion times (min for Min-Min, max for Max-Min).
    """

    #: +1 selects the smallest per-task best CT (Min-Min), -1 the largest.
    _second_phase_sign: float = +1.0

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        tracer = get_tracer()
        unmapped = list(range(etc.num_tasks))  # row indices, oldest first
        values = etc.values
        while unmapped:
            ready = mapping.ready_times()
            # Phase 1 (first Min): per-task minimum completion time.
            completion = values[unmapped] + ready[None, :]
            best_ct = completion.min(axis=1)
            # Phase 2 (second Min / Max): select the extremal pair; pair
            # ties go to the oldest task (deterministic, per Section 2).
            signed = self._second_phase_sign * best_ct
            task_pos = int(tied_argmin(signed).min())
            task_idx = unmapped[task_pos]
            # Resolve the machine tie *for the selected task only*, so a
            # random policy consumes draws in the order the paper's
            # examples assume (one machine decision per mapped task).
            candidates = tied_argmin(completion[task_pos])
            machine_idx = tie_breaker.choose(candidates)
            mapping.assign(etc.tasks[task_idx], etc.machines[machine_idx])
            if tracer.enabled:
                tracer.event(
                    f"{self.name}.decision",
                    task=etc.tasks[task_idx],
                    machine=etc.machines[machine_idx],
                    completion=float(completion[task_pos, machine_idx]),
                    tied=tuple(etc.machines[int(j)] for j in candidates),
                )
                tracer.count("decisions")
            unmapped.pop(task_pos)


@register_heuristic
class MinMin(_TwoPhaseGreedy):
    """Min-Min: repeatedly commit the globally earliest-finishing pair."""

    name = "min-min"
    _second_phase_sign = +1.0


@register_heuristic
class MaxMin(_TwoPhaseGreedy):
    """Max-Min baseline: commit the pair whose best finish is *latest*.

    Not analysed in the paper but the canonical sibling of Min-Min
    (Ibarra & Kim; Braun et al.); used by the cross-heuristic study.
    """

    name = "max-min"
    _second_phase_sign = -1.0


@register_heuristic
class Duplex(Heuristic):
    """Duplex baseline: run Min-Min and Max-Min, keep the better makespan.

    From Braun et al.; ties in makespan go to Min-Min.  Random policies
    draw from the same stream sequentially (Min-Min first).
    """

    name = "duplex"

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        ready = mapping.initial_ready_times()
        min_map = MinMin().map_tasks(etc, ready, tie_breaker)
        max_map = MaxMin().map_tasks(etc, ready, tie_breaker)
        winner = min_map if min_map.makespan() <= max_map.makespan() else max_map
        for assignment in winner.assignments:
            mapping.assign(assignment.task, assignment.machine)


def minmin_round_table(mapping_so_far: Mapping) -> np.ndarray:
    """Completion-time table for the *next* Min-Min round (diagnostics).

    Returns the ``(num_unmapped, num_machines)`` CT matrix the heuristic
    would inspect, in unmapped-task order — the quantity the paper's
    Table 2/3 rows display per resource allocation step.
    """
    etc = mapping_so_far.etc
    rows = [etc.task_index(t) for t in mapping_so_far.unmapped_tasks()]
    return etc.values[rows] + mapping_so_far.ready_times()[None, :]


__all__.append("minmin_round_table")

"""Resource-allocation heuristics (paper Section 3 + literature baselines).

Importing this package registers every heuristic with the registry in
:mod:`repro.heuristics.base`; use :func:`get_heuristic` for name-based
construction.
"""

from repro.heuristics.base import (
    Heuristic,
    get_heuristic,
    heuristic_names,
    register_heuristic,
)
from repro.heuristics.annealing import SimulatedAnnealing
from repro.heuristics.backends import (
    DEFAULT_BACKEND,
    BatchedBackend,
    IncrementalBackend,
    KernelBackend,
    ReferenceBackend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.heuristics.batched import (
    GREEDY_FAMILY,
    BatchResult,
    batch_ready_vector,
    map_batch,
)
from repro.heuristics.genitor import Genitor
from repro.heuristics.gsa import GeneticSimulatedAnnealing
from repro.heuristics.optimal import BranchAndBound
from repro.heuristics.kpb import KPBStep, KPercentBest, kpb_subset_size
from repro.heuristics.mct import MCT
from repro.heuristics.met import MET
from repro.heuristics.minmin import Duplex, MaxMin, MinMin, minmin_round_table
from repro.heuristics.olb import OLB
from repro.heuristics.random_baseline import RandomMapper
from repro.heuristics.segmented import SegmentedMinMin
from repro.heuristics.sufferage import Sufferage, SufferageDecision, SufferagePass
from repro.heuristics.swa import SwitchingAlgorithm, SWAStep, balance_index
from repro.heuristics.tabu import TabuSearch

__all__ = [
    "Heuristic",
    "register_heuristic",
    "get_heuristic",
    "heuristic_names",
    "KernelBackend",
    "ReferenceBackend",
    "IncrementalBackend",
    "BatchedBackend",
    "register_backend",
    "get_backend",
    "backend_names",
    "DEFAULT_BACKEND",
    "BatchResult",
    "GREEDY_FAMILY",
    "batch_ready_vector",
    "map_batch",
    "MET",
    "MCT",
    "OLB",
    "RandomMapper",
    "MinMin",
    "MaxMin",
    "Duplex",
    "minmin_round_table",
    "Sufferage",
    "SufferageDecision",
    "SufferagePass",
    "KPercentBest",
    "KPBStep",
    "kpb_subset_size",
    "SwitchingAlgorithm",
    "SWAStep",
    "balance_index",
    "Genitor",
    "SimulatedAnnealing",
    "GeneticSimulatedAnnealing",
    "TabuSearch",
    "SegmentedMinMin",
    "BranchAndBound",
    "PAPER_HEURISTICS",
]

#: The seven heuristics analysed in the paper, in presentation order.
PAPER_HEURISTICS: tuple[str, ...] = (
    "genitor",
    "min-min",
    "mct",
    "met",
    "switching-algorithm",
    "k-percent-best",
    "sufferage",
)

"""Heuristic interface and registry.

Every mapping heuristic of the paper (and every baseline) implements the
same contract: given an ETC matrix (possibly a restriction produced by
the iterative technique), initial machine ready times, and a
tie-breaking policy, produce a complete :class:`~repro.core.schedule.Mapping`.

Task ordering convention: heuristics that consume "a task list in a
given arbitrary order" (MCT, MET, SWA, K-percent Best) use the ETC row
order.  Because :meth:`ETCMatrix.submatrix` preserves relative row
order, the list is *arbitrary but fixed between iterations* exactly as
the paper's proofs require (Section 3.3).
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Mapping as MappingABC, Sequence


from repro.core.schedule import Mapping
from repro.core.ties import DeterministicTieBreaker, TieBreaker
from repro.etc.matrix import ETCMatrix
from repro.exceptions import MappingError, UnknownHeuristicError
from repro.obs.tracer import get_tracer

__all__ = [
    "Heuristic",
    "register_heuristic",
    "get_heuristic",
    "heuristic_names",
    "validate_complete",
]

ReadyTimes = "MappingABC[str, float] | Sequence[float] | None"


class Heuristic(abc.ABC):
    """Base class for makespan-minimising mapping heuristics.

    Subclasses set :attr:`name` and implement :meth:`_run`.  The public
    entry point :meth:`map_tasks` normalises arguments, runs the
    heuristic and verifies that the result maps every task.
    """

    #: Registry key and display name (e.g. ``"min-min"``).
    name: str = ""

    #: Whether the heuristic can exploit a seed mapping natively (only
    #: Genitor in the paper; see also
    #: :class:`repro.core.seeding.SeededIterativeScheduler` which grafts
    #: seeding onto any heuristic).
    supports_seeding: bool = False

    def map_tasks(
        self,
        etc: ETCMatrix,
        ready_times: MappingABC[str, float] | Sequence[float] | None = None,
        tie_breaker: TieBreaker | None = None,
        *,
        seed_mapping: MappingABC[str, str] | None = None,
    ) -> Mapping:
        """Map every task of ``etc`` onto a machine.

        Parameters
        ----------
        etc:
            The (possibly restricted) ETC matrix.
        ready_times:
            Initial machine ready times (default all zero).
        tie_breaker:
            Tie-breaking policy (default deterministic lowest index).
        seed_mapping:
            Optional ``{task: machine}`` seed.  Ignored unless
            :attr:`supports_seeding` is true.
        """
        breaker = tie_breaker or DeterministicTieBreaker()
        mapping = Mapping(etc, ready_times)
        with get_tracer().span(
            "heuristic.map",
            heuristic=self.name,
            tasks=etc.num_tasks,
            machines=etc.num_machines,
        ):
            if seed_mapping is not None and self.supports_seeding:
                self._validate_seed(etc, seed_mapping)
                self._run(mapping, breaker, seed_mapping=dict(seed_mapping))
            else:
                self._run(mapping, breaker, seed_mapping=None)
        validate_complete(mapping)
        return mapping

    @abc.abstractmethod
    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        """Fill ``mapping`` with one assignment per task."""

    @staticmethod
    def _validate_seed(etc: ETCMatrix, seed_mapping: MappingABC[str, str]) -> None:
        seed_tasks = set(seed_mapping)
        if seed_tasks != set(etc.tasks):
            missing = set(etc.tasks) - seed_tasks
            extra = seed_tasks - set(etc.tasks)
            raise MappingError(
                f"seed mapping does not cover the task set exactly "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        for task, machine in seed_mapping.items():
            etc.machine_index(machine)
            etc.task_index(task)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def validate_complete(mapping: Mapping) -> None:
    """Raise :class:`MappingError` unless every task is assigned once."""
    if not mapping.is_complete():
        raise MappingError(
            f"heuristic left {len(mapping.unmapped_tasks())} task(s) unmapped: "
            f"{mapping.unmapped_tasks()[:5]!r}..."
        )


_REGISTRY: dict[str, Callable[[], Heuristic]] = {}


def register_heuristic(factory: Callable[[], Heuristic] | type[Heuristic]):
    """Class decorator/registrar adding a heuristic factory by its name."""
    probe = factory()
    if not probe.name:
        raise ValueError(f"heuristic {factory!r} does not define a name")
    _REGISTRY[probe.name] = factory
    return factory


def get_heuristic(name: str, **kwargs) -> Heuristic:
    """Instantiate a registered heuristic by name.

    ``kwargs`` are forwarded to the factory, enabling e.g.
    ``get_heuristic("k-percent-best", percent=70.0)``.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownHeuristicError(
            f"unknown heuristic {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs) if kwargs else factory()


def heuristic_names() -> tuple[str, ...]:
    """All registered heuristic names, sorted."""
    return tuple(sorted(_REGISTRY))

"""Minimum Completion Time (MCT) heuristic — paper Figure 5.

Procedure (verbatim structure):

1. A task list is generated that includes all unmapped tasks in a given
   arbitrary order (we use ETC row order; "arbitrary but fixed between
   iterations" as the Section 3.3 proof requires).
2. The first task in the list is mapped to its minimum *completion*
   time machine (machine ready time plus estimated computation time of
   the task on that machine — Eq. 1).
3. The task is removed from the list.
4. The ready time of the machine on which the task is mapped is updated.
5. Steps 2–4 are repeated until all the tasks have been mapped.

The paper proves MCT's mapping never changes across iterations of the
iterative technique under deterministic ties (Theorem, Section 3.3) and
shows by example that random tie-breaking can increase makespan.
"""

from __future__ import annotations

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker, tied_argmin
from repro.heuristics.base import Heuristic, register_heuristic
from repro.obs.tracer import get_tracer

__all__ = ["MCT"]


@register_heuristic
class MCT(Heuristic):
    """Minimum Completion Time: each task to the machine finishing it first."""

    name = "mct"

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        tracer = get_tracer()
        for task in etc.tasks:
            completion = mapping.completion_times_if(task)
            candidates = tied_argmin(completion)
            machine_idx = tie_breaker.choose(candidates)
            assignment = mapping.assign(task, etc.machines[machine_idx])
            if tracer.enabled:
                tracer.event(
                    "mct.decision",
                    task=task,
                    machine=assignment.machine,
                    completion=assignment.completion,
                    tied=tuple(etc.machines[int(j)] for j in candidates),
                )
                tracer.count("decisions")

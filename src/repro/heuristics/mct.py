"""Minimum Completion Time (MCT) heuristic — paper Figure 5.

Procedure (verbatim structure):

1. A task list is generated that includes all unmapped tasks in a given
   arbitrary order (we use ETC row order; "arbitrary but fixed between
   iterations" as the Section 3.3 proof requires).
2. The first task in the list is mapped to its minimum *completion*
   time machine (machine ready time plus estimated computation time of
   the task on that machine — Eq. 1).
3. The task is removed from the list.
4. The ready time of the machine on which the task is mapped is updated.
5. Steps 2–4 are repeated until all the tasks have been mapped.

The paper proves MCT's mapping never changes across iterations of the
iterative technique under deterministic ties (Theorem, Section 3.3) and
shows by example that random tie-breaking can increase makespan.
"""

from __future__ import annotations

from repro.core.schedule import Mapping
from repro.core.ties import DeterministicTieBreaker, TieBreaker, tied_argmin
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.kernels import first_tied_min_index, tied_min_indices
from repro.obs.tracer import get_tracer

__all__ = ["MCT"]


@register_heuristic
class MCT(Heuristic):
    """Minimum Completion Time: each task to the machine finishing it first."""

    name = "mct"

    def __init__(self, *, incremental: bool = True) -> None:
        #: Use the index-space kernel (default); the label-space
        #: reference path is kept for equivalence tests.
        self.incremental = bool(incremental)

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        if self.incremental:
            self._run_incremental(mapping, tie_breaker)
        else:
            self._run_reference(mapping, tie_breaker)

    def _run_incremental(self, mapping: Mapping, tie_breaker: TieBreaker) -> None:
        """Index-space kernel: no label lookups, live ready vector."""
        etc = mapping.etc
        tracer = get_tracer()
        values = etc.values
        machines = etc.machines
        ready = mapping.ready_times_view()
        fast_ties = (
            type(tie_breaker) is DeterministicTieBreaker and not tracer.enabled
        )
        for ti, task in enumerate(etc.tasks):
            completion = values[ti] + ready
            if fast_ties:
                machine_idx = first_tied_min_index(completion)
            else:
                candidates = tied_min_indices(completion)
                machine_idx = tie_breaker.choose(candidates)
            assignment = mapping.assign_index(ti, machine_idx)
            if tracer.enabled:
                tracer.event(
                    "mct.decision",
                    task=task,
                    machine=assignment.machine,
                    completion=assignment.completion,
                    tied=tuple(machines[int(j)] for j in candidates),
                )
                tracer.count("decisions")
                tracer.observe("decision.tie_candidates", len(candidates))

    def _run_reference(self, mapping: Mapping, tie_breaker: TieBreaker) -> None:
        etc = mapping.etc
        tracer = get_tracer()
        for task in etc.tasks:
            completion = mapping.completion_times_if(task)
            candidates = tied_argmin(completion)
            machine_idx = tie_breaker.choose(candidates)
            assignment = mapping.assign(task, etc.machines[machine_idx])
            if tracer.enabled:
                tracer.event(
                    "mct.decision",
                    task=task,
                    machine=assignment.machine,
                    completion=assignment.completion,
                    tied=tuple(etc.machines[int(j)] for j in candidates),
                )
                tracer.count("decisions")
                tracer.observe("decision.tie_candidates", len(candidates))

"""Exact branch-and-bound makespan minimiser (the A*-role oracle).

Braun et al.'s eleventh heuristic is an A* tree search over partial
mappings.  This module provides the equivalent exact solver as a
depth-first branch-and-bound, intended as an **optimality oracle** for
small instances: the test suite uses it to certify that Genitor / SA /
Tabu reach the optimum on small instances, and the benches report
optimality gaps for the greedy heuristics.

Search design:

* tasks are branched in descending order of their minimum ETC (hardest
  first — tightens bounds early);
* machine children are visited in ascending completion-time order;
* incumbent initialised with Min-Min (a strong upper bound);
* lower bound for a partial state = max of

  - the largest committed machine finish,
  - per remaining task, its earliest possible completion,
  - the "perfect packing" bound: (committed load + sum of remaining
    minimum ETCs) averaged over all machines, relative to the smallest
    current finish;

* machine-symmetry pruning: among machines that are *empty and have
  identical columns and ready times*, only the first is branched.

``node_limit`` bounds the search; if it is hit the result is still a
valid mapping but :attr:`BranchAndBound.proven_optimal` is False.
"""

from __future__ import annotations

import numpy as np

from repro.core.schedule import Mapping
from repro.core.ties import TieBreaker
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, register_heuristic
from repro.heuristics.minmin import MinMin

__all__ = ["BranchAndBound"]


@register_heuristic
class BranchAndBound(Heuristic):
    """Exact (or node-capped) minimum-makespan mapping."""

    name = "branch-and-bound"

    def __init__(self, node_limit: int = 2_000_000) -> None:
        if node_limit < 1:
            raise ConfigurationError(f"node_limit must be >= 1, got {node_limit}")
        self.node_limit = int(node_limit)
        #: True when the last run exhausted the search space.
        self.proven_optimal: bool = False
        #: Nodes expanded by the last run.
        self.nodes_expanded: int = 0

    def _run(
        self,
        mapping: Mapping,
        tie_breaker: TieBreaker,
        seed_mapping: dict[str, str] | None,
    ) -> None:
        etc = mapping.etc
        values = etc.values
        num_tasks, num_machines = etc.shape
        ready0 = mapping.initial_ready_times()

        # Branch order: hardest tasks first.
        min_etc = values.min(axis=1)
        task_order = np.argsort(-min_etc, kind="stable")
        # suffix_min[i] = sum of min ETCs of tasks from position i on.
        suffix_min = np.zeros(num_tasks + 1)
        for pos in range(num_tasks - 1, -1, -1):
            suffix_min[pos] = suffix_min[pos + 1] + min_etc[task_order[pos]]

        # Incumbent: Min-Min.
        incumbent_map = MinMin().map_tasks(etc, ready0.tolist())
        best_vector = incumbent_map.assignment_vector()
        best_span = incumbent_map.makespan()

        assignment = np.full(num_tasks, -1, dtype=np.int64)
        finish = ready0.copy()
        self.nodes_expanded = 0
        self.proven_optimal = True

        def lower_bound(pos: int) -> float:
            committed = float(finish.max())
            remaining = suffix_min[pos]
            # perfect-packing average over machines
            average = (float(finish.sum()) + remaining) / num_machines
            return max(committed, average)

        def dfs(pos: int) -> None:
            nonlocal best_span, best_vector
            self.nodes_expanded += 1
            if self.nodes_expanded > self.node_limit:
                self.proven_optimal = False
                return
            if pos == num_tasks:
                span = float(finish.max())
                if span < best_span - 1e-12:
                    best_span = span
                    best_vector = assignment.copy()
                return
            if lower_bound(pos) >= best_span - 1e-12:
                return
            task = int(task_order[pos])
            completions = finish + values[task]
            children = np.argsort(completions, kind="stable")
            seen_empty_signature: set[bytes] = set()
            for machine in children:
                machine = int(machine)
                if completions[machine] >= best_span - 1e-12:
                    break  # sorted: every later child is at least as bad
                # symmetry pruning among identical empty machines
                if finish[machine] == ready0[machine] and not np.any(
                    assignment[assignment >= 0] == machine
                ):
                    signature = (
                        values[:, machine].tobytes()
                        + np.float64(ready0[machine]).tobytes()
                    )
                    if signature in seen_empty_signature:
                        continue
                    seen_empty_signature.add(signature)
                old = finish[machine]
                finish[machine] = completions[machine]
                assignment[task] = machine
                dfs(pos + 1)
                finish[machine] = old
                assignment[task] = -1
                if not self.proven_optimal:
                    return

        dfs(0)
        for task_idx, machine_idx in enumerate(best_vector):
            mapping.assign(etc.tasks[task_idx], etc.machines[int(machine_idx)])

    def __repr__(self) -> str:
        return f"BranchAndBound(node_limit={self.node_limit})"

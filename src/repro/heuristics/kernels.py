"""Incremental completion-table kernels for the greedy heuristic family.

The reference implementations of Min-Min/Max-Min rebuild the full
``(unmapped × machines)`` completion-time table from scratch every
round — a fancy-index copy plus a broadcast add plus a full row-min,
O(T·M) per round and O(T²·M) per run.  But one assignment changes the
ready time of exactly *one* machine, so only one column of the table
(and the per-row minima that column held) can change.  The kernel here
maintains the table in place:

* :meth:`IncrementalCompletionTable.refresh_column` recomputes the
  changed column **exactly** as ``ETC[:, m] + ready[m]`` (never by
  adding a delta, which would drift from the reference by one float
  rounding) so every entry stays bit-identical to a fresh rebuild;
* per-row minima are patched incrementally: because ETC values are
  strictly positive, a committed assignment strictly *raises* the
  machine's ready time, so a row's minimum can only change if the
  refreshed column held it — those rows (typically ``U/M`` of them) are
  re-reduced, everything else is untouched.

Constant-factor discipline matters as much as the asymptotics at paper
scale (512×32): per-round numpy call overhead dominates once the
element counts drop to hundreds.  Three measures keep it down:

* deactivated rows have a ``±inf`` sentinel written into ``best``
  (``+inf`` when selecting minima, ``-inf`` for maxima) so the
  selection can use plain ``min()``/``max()`` reductions instead of
  ``where=``-masked ones (~7x slower at this size);
* every per-round elementwise op writes into preallocated scratch
  buffers (no allocation churn);
* tolerance tie detection over a single short row uses
  :func:`tied_min_indices` — a plain Python scan that beats the numpy
  pipeline below ~100 elements.

Every shortcut is an exact floating-point identity with the reference
code (completion times are strictly positive because ETC values are
validated positive and ready times non-negative; min/max selection and
negation are exact in IEEE arithmetic), not an approximation; the
property suite asserts byte-identical decisions and obs traces against
the retained reference paths under random ETCs, ready times, and tie
policies.
"""

from __future__ import annotations

import numpy as np

from repro.core.ties import DEFAULT_ABS_TOL, DEFAULT_REL_TOL

__all__ = [
    "IncrementalCompletionTable",
    "oldest_extremal_row",
    "tied_min_indices",
    "first_tied_min_index",
]


class IncrementalCompletionTable:
    """``CT(t, m) = ETC(t, m) + ready(m)`` under single-column updates.

    Parameters
    ----------
    values:
        The read-only ``(T, M)`` ETC array.
    ready:
        Initial ready-time vector (length ``M``); only read once — the
        table is kept current through :meth:`refresh_column`.
    fill:
        Sentinel written into ``best`` when a row deactivates: ``+inf``
        when the consumer selects minima over ``best`` (Min-Min),
        ``-inf`` for maxima (Max-Min).  Real completion times are
        finite, so the sentinel can never be mistaken for one.

    Attributes
    ----------
    table:
        The maintained ``(T, M)`` completion-time table.  Entries of
        *inactive* (already-mapped) rows are still refreshed (cheaper
        than masking) but their ``best`` entries hold the sentinel.
    best:
        Per-row minimum of ``table`` for active rows; ``fill`` for
        inactive ones.
    active:
        Boolean mask of not-yet-mapped rows.
    """

    __slots__ = ("values", "table", "best", "active", "fill", "_stale", "_buf", "_tol", "_tied")

    def __init__(
        self, values: np.ndarray, ready: np.ndarray, *, fill: float = np.inf
    ) -> None:
        num_tasks = values.shape[0]
        self.values = values
        self.table = values + np.asarray(ready, dtype=np.float64)[None, :]
        self.best = self.table.min(axis=1)
        self.active = np.ones(num_tasks, dtype=bool)
        self.fill = float(fill)
        self._stale = np.empty(num_tasks, dtype=bool)
        self._buf = np.empty(num_tasks, dtype=np.float64)
        self._tol = np.empty(num_tasks, dtype=np.float64)
        self._tied = np.empty(num_tasks, dtype=bool)

    def deactivate(self, row: int) -> None:
        """Mark ``row`` as mapped; its ``best`` entry becomes the sentinel."""
        self.active[row] = False
        self.best[row] = self.fill

    def refresh_column(self, col: int, new_ready: float) -> None:
        """Recompute column ``col`` for ready time ``new_ready``.

        ``new_ready`` must be strictly greater than the ready time the
        column currently reflects (always true after an assignment,
        since ETC values are strictly positive) — the row-min patching
        below relies on column values only ever increasing.
        """
        column = self.table[:, col]
        # Rows whose minimum lives in this column (column == best) are
        # the only ones whose best can change when the column rises.
        # Inactive rows are masked out (their sentinel must survive).
        stale = np.less_equal(column, self.best, out=self._stale)
        stale &= self.active
        np.add(self.values[:, col], new_ready, out=column)
        rows = stale.nonzero()[0]
        if rows.size:
            self.best[rows] = self.table[rows].min(axis=1)


def oldest_extremal_row(table: IncrementalCompletionTable, sign: int) -> int:
    """Oldest active row attaining the tolerance-tied extremum of ``best``.

    Exactly reproduces ``int(tied_argmin(sign * best[unmapped]).min())``
    from the reference two-phase kernels (``sign=+1`` Min-Min with
    ``fill=+inf``, ``sign=-1`` Max-Min with ``fill=-inf``) for strictly
    positive completion times, where ``unmapped`` is the ascending list
    of active row indices.
    """
    best = table.best
    if sign > 0:
        # The exact argmin is always tolerance-tied with itself; an
        # *earlier* row wins only if it lies within its own tolerance
        # of the minimum.  Checking the prefix minimum against twice
        # the tolerance (rounding error is ~1 ulp, i.e. ~1e-16
        # relative, vs the 1e-9 relative tolerance) proves the common
        # case — no earlier tie — without the full elementwise scan.
        j = int(best.argmin())
        if j:
            target = best[j]
            prefix_min = best[:j].min()
            margin = 2.0 * max(DEFAULT_ABS_TOL, DEFAULT_REL_TOL * prefix_min)
            if prefix_min - target <= margin:
                # Near the tolerance boundary (or an exact tie): defer
                # to the reference's elementwise scan.  signed = best
                # (> 0), so the reference tolerance scale
                # max(|signed|, |target|) is elementwise best; the +inf
                # sentinel ties with itself (inf <= inf), hence the
                # active mask.
                diff = np.subtract(best, target, out=table._buf)
                tol = np.multiply(best, DEFAULT_REL_TOL, out=table._tol)
                np.maximum(tol, DEFAULT_ABS_TOL, out=tol)
                tied = np.less_equal(diff, tol, out=table._tied)
                tied &= table.active
                return int(tied.argmax())
        return j
    # signed = -best (< 0): |signed| <= |target| everywhere, so the
    # tolerance scale collapses to the scalar |target| = max(best).
    # The -inf sentinel yields diff = +inf > tol, masking itself —
    # and peak - prefix_max is the elementwise expression evaluated
    # at the prefix's closest element, so the prefix check is exact.
    j = int(best.argmax())
    if j:
        peak = best[j]
        tol = max(DEFAULT_ABS_TOL, DEFAULT_REL_TOL * abs(peak))
        if peak - best[:j].max() <= tol:
            diff = np.subtract(peak, best, out=table._buf)
            tied = np.less_equal(diff, tol, out=table._tied)
            return int(tied.argmax())
    return j


def tied_min_indices(row: np.ndarray) -> list[int]:
    """Exact :func:`repro.core.ties.tied_argmin` for short positive rows.

    A plain Python scan over ``row.tolist()`` outruns the vectorised
    pipeline below ~100 elements (the machine axis is 32 at paper
    scale).  For strictly positive values the reference tolerance
    ``max(abs_tol, rel_tol * max(|v|, |target|))`` is exactly
    ``max(abs_tol, rel_tol * v)`` because ``v >= target > 0``, and
    ``|v - target|`` is exactly ``v - target``; both simplifications
    are value-identical, so the returned candidate list matches the
    reference's element for element.
    """
    lst = row.tolist()
    target = min(lst)
    out = []
    for j, v in enumerate(lst):
        tol = DEFAULT_REL_TOL * v
        if tol < DEFAULT_ABS_TOL:
            tol = DEFAULT_ABS_TOL
        if v - target <= tol:
            out.append(j)
    return out


def first_tied_min_index(row: np.ndarray) -> int:
    """First index of :func:`tied_min_indices` without building the list.

    Exactly what ``DeterministicTieBreaker.choose(tied_min_indices(row))``
    returns (the candidate list ascends, so its minimum is its first
    element); used on the deterministic fast paths when no tracer needs
    the full candidate set.  Early-exits at the first tied element.
    """
    lst = row.tolist()
    target = min(lst)
    for j, v in enumerate(lst):
        tol = DEFAULT_REL_TOL * v
        if tol < DEFAULT_ABS_TOL:
            tol = DEFAULT_ABS_TOL
        if v - target <= tol:
            return j
    raise AssertionError("unreachable: the minimum always ties with itself")

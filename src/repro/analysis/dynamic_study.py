"""Dynamic-mode policy study (Maheswaran et al. context).

SWA, K-percent Best and Sufferage were designed for *dynamic* HC
environments ("the arrival times of the tasks are not known a priori",
paper Section 4).  This study sweeps Poisson arrival rates and compares
on-line (immediate-mode) and interval-batch policies on makespan and
mean queueing delay, replicating the qualitative regimes of Maheswaran
et al.: at low load every reasonable policy ties; as load grows,
heterogeneity-blind policies (OLB) and load-blind policies (MET)
separate from the completion-time-aware ones.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.experiments import stable_key
from repro.etc.generation import Consistency, Heterogeneity, generate_range_based
from repro.exceptions import ConfigurationError
from repro.heuristics.base import get_heuristic
from repro.sim.hcsystem import (
    DynamicHCSimulation,
    KPBOnline,
    MCTOnline,
    METOnline,
    OLBOnline,
    SWAOnline,
    poisson_workload,
)

__all__ = [
    "DynamicPolicySpec",
    "DynamicStudyRow",
    "default_policies",
    "dynamic_policy_study",
    "format_dynamic_table",
]


@dataclass(frozen=True)
class DynamicPolicySpec:
    """A named dynamic policy: a factory building simulation kwargs."""

    name: str
    build: Callable[[], dict]


def default_policies(batch_interval: float = 10_000.0) -> tuple[DynamicPolicySpec, ...]:
    """The standard policy roster: five immediate + two batch modes."""
    return (
        DynamicPolicySpec("mct-online", lambda: {"policy": MCTOnline()}),
        DynamicPolicySpec("met-online", lambda: {"policy": METOnline()}),
        DynamicPolicySpec("olb-online", lambda: {"policy": OLBOnline()}),
        DynamicPolicySpec(
            "kpb-online", lambda: {"policy": KPBOnline(percent=50.0)}
        ),
        DynamicPolicySpec("swa-online", lambda: {"policy": SWAOnline()}),
        DynamicPolicySpec(
            "batch-min-min",
            lambda: {
                "batch_heuristic": get_heuristic("min-min"),
                "batch_interval": batch_interval,
            },
        ),
        DynamicPolicySpec(
            "batch-sufferage",
            lambda: {
                "batch_heuristic": get_heuristic("sufferage"),
                "batch_interval": batch_interval,
            },
        ),
    )


@dataclass(frozen=True)
class DynamicStudyRow:
    """Aggregate outcome of one (policy, arrival-rate) cell."""

    policy: str
    rate: float
    instances: int
    mean_makespan: float
    mean_queue_wait: float
    mean_utilisation: float


def dynamic_policy_study(
    policies: Sequence[DynamicPolicySpec] | None = None,
    *,
    rates: Sequence[float] = (5e-5, 2e-4, 1e-3),
    num_tasks: int = 100,
    num_machines: int = 8,
    instances: int = 5,
    heterogeneity: Heterogeneity = Heterogeneity.HIHI,
    consistency: Consistency = Consistency.INCONSISTENT,
    seed: int = 0,
) -> list[DynamicStudyRow]:
    """Sweep arrival rates over the policy roster.

    Each (rate, instance) cell shares its ETC matrix and arrival stream
    across all policies, so the comparison is paired.
    """
    if instances < 1:
        raise ConfigurationError(f"instances must be >= 1, got {instances}")
    if any(rate <= 0 for rate in rates):
        raise ConfigurationError("arrival rates must be positive")
    specs = tuple(policies) if policies is not None else default_policies()
    rows: list[DynamicStudyRow] = []
    root = np.random.SeedSequence(seed)
    for rate in rates:
        workloads = []
        for idx in range(instances):
            cell = np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(stable_key(f"{rate!r}", str(idx)),),
            )
            etc_seed, arr_seed = cell.spawn(2)
            etc = generate_range_based(
                num_tasks,
                num_machines,
                heterogeneity,
                consistency,
                rng=np.random.default_rng(etc_seed),
            )
            workloads.append(
                poisson_workload(etc, rate=rate, rng=np.random.default_rng(arr_seed))
            )
        for spec in specs:
            spans, waits, utils = [], [], []
            for workload in workloads:
                trace = DynamicHCSimulation(workload, **spec.build()).run()
                spans.append(trace.makespan())
                waits.append(trace.mean_queue_wait())
                utils.append(
                    float(
                        np.mean(
                            [trace.utilisation(m) for m in workload.etc.machines]
                        )
                    )
                )
            rows.append(
                DynamicStudyRow(
                    policy=spec.name,
                    rate=float(rate),
                    instances=instances,
                    mean_makespan=float(np.mean(spans)),
                    mean_queue_wait=float(np.mean(waits)),
                    mean_utilisation=float(np.mean(utils)),
                )
            )
    return rows


def format_dynamic_table(rows: Sequence[DynamicStudyRow]) -> str:
    """Fixed-width report grouped by arrival rate."""
    lines = []
    for rate in sorted({r.rate for r in rows}):
        sel = sorted(
            (r for r in rows if r.rate == rate), key=lambda r: r.mean_makespan
        )
        lines.append(f"arrival rate {rate:g} tasks/time-unit:")
        lines.append(
            f"  {'policy':<18}{'mean makespan':>16}{'mean wait':>14}{'util%':>8}"
        )
        for r in sel:
            lines.append(
                f"  {r.policy:<18}{r.mean_makespan:>16,.0f}"
                f"{r.mean_queue_wait:>14,.0f}{100 * r.mean_utilisation:>8.1f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()

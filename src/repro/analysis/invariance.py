"""Empirical checkers for the paper's invariance theorems.

The paper proves (Sections 3.2–3.4) that with deterministic
tie-breaking the mappings produced by **Min-Min**, **MCT** and **MET**
are identical across all iterations of the iterative technique — so the
technique cannot improve (or worsen) any machine's finishing time for
those heuristics.  The functions here validate that claim over large
random ETC ensembles and, dually, quantify how often the *other*
heuristics change their mappings (and increase makespan) even under
deterministic ties.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

import numpy as np

from repro.core.iterative import IterativeResult, IterativeScheduler
from repro.core.ties import DeterministicTieBreaker, TieBreaker
from repro.etc.generation import Consistency, Heterogeneity, generate_ensemble
from repro.etc.matrix import ETCMatrix
from repro.heuristics.base import Heuristic, get_heuristic

__all__ = [
    "INVARIANT_HEURISTICS",
    "is_iteration_invariant",
    "makespans_monotone",
    "InvarianceViolation",
    "InvarianceReport",
    "verify_invariance",
]

#: Heuristics the paper proves iteration-invariant under deterministic ties.
INVARIANT_HEURISTICS: tuple[str, ...] = ("min-min", "mct", "met")


def is_iteration_invariant(result: IterativeResult) -> bool:
    """True when no iteration re-mapped any task (theorem conclusion)."""
    return not result.mapping_changed()


def makespans_monotone(result: IterativeResult, tol: float = 1e-9) -> bool:
    """True when per-iteration makespans never increase.

    For iteration-invariant heuristics this holds trivially (each
    iteration's makespan is the next order statistic of the original
    finishing times); for seeded schedulers it holds by construction.
    """
    return not result.makespan_increased(tol)


@dataclass(frozen=True)
class InvarianceViolation:
    """A concrete instance where invariance failed (a counterexample)."""

    etc: ETCMatrix
    result: IterativeResult

    def describe(self) -> str:
        spans = ", ".join(f"{s:.6g}" for s in self.result.makespans())
        return (
            f"{self.result.heuristic_name} changed its mapping on a "
            f"{self.etc.num_tasks}x{self.etc.num_machines} instance "
            f"(makespans per iteration: {spans})"
        )


@dataclass
class InvarianceReport:
    """Outcome of an ensemble invariance check."""

    heuristic: str
    instances_checked: int = 0
    mapping_changes: int = 0
    makespan_increases: int = 0
    violations: list[InvarianceViolation] = field(default_factory=list)

    @property
    def invariant(self) -> bool:
        """True when no instance changed its mapping."""
        return self.mapping_changes == 0

    @property
    def change_rate(self) -> float:
        if self.instances_checked == 0:
            return 0.0
        return self.mapping_changes / self.instances_checked

    @property
    def increase_rate(self) -> float:
        if self.instances_checked == 0:
            return 0.0
        return self.makespan_increases / self.instances_checked

    def __str__(self) -> str:
        return (
            f"{self.heuristic}: {self.instances_checked} instances, "
            f"{self.mapping_changes} mapping changes "
            f"({100 * self.change_rate:.1f}%), "
            f"{self.makespan_increases} makespan increases "
            f"({100 * self.increase_rate:.1f}%)"
        )


def verify_invariance(
    heuristic: Heuristic | str,
    instances: Iterable[ETCMatrix] | None = None,
    *,
    num_instances: int = 100,
    num_tasks: int = 30,
    num_machines: int = 8,
    heterogeneity: Heterogeneity = Heterogeneity.HIHI,
    consistency: Consistency = Consistency.INCONSISTENT,
    tie_breaker: TieBreaker | None = None,
    rng: np.random.Generator | int | None = None,
    keep_violations: int = 5,
) -> InvarianceReport:
    """Run the iterative technique over an ensemble and tally changes.

    ``instances`` overrides the generated ensemble when provided.  The
    default tie breaker is deterministic — the hypothesis of the
    theorems.  Up to ``keep_violations`` concrete counterexamples are
    retained in the report for inspection.
    """
    h = get_heuristic(heuristic) if isinstance(heuristic, str) else heuristic
    breaker = tie_breaker or DeterministicTieBreaker()
    if instances is None:
        instances = generate_ensemble(
            num_instances,
            num_tasks,
            num_machines,
            heterogeneity=heterogeneity,
            consistency=consistency,
            rng=rng,
        )
    report = InvarianceReport(heuristic=h.name)
    scheduler = IterativeScheduler(h, tie_breaker=breaker)
    for etc in instances:
        result = scheduler.run(etc)
        report.instances_checked += 1
        changed = result.mapping_changed()
        if changed:
            report.mapping_changes += 1
            if len(report.violations) < keep_violations:
                report.violations.append(InvarianceViolation(etc=etc, result=result))
        if result.makespan_increased():
            report.makespan_increases += 1
    return report

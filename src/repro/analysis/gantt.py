"""ASCII Gantt charts.

The paper visualises every worked example as a Gantt chart of machines
(Figures 3, 4, 6, 7, 9–12, 15, 16, 18, 19).  :func:`render_gantt`
reproduces those figures in fixed-width text, from either an analytic
:class:`~repro.core.schedule.Mapping` or a measured
:class:`~repro.sim.trace.ExecutionTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.schedule import Mapping
from repro.exceptions import ConfigurationError
from repro.sim.trace import ExecutionTrace

__all__ = ["GanttBar", "render_gantt", "gantt_bars"]


@dataclass(frozen=True)
class GanttBar:
    """One task bar of the chart."""

    machine: str
    task: str
    start: float
    finish: float


def gantt_bars(source: Mapping | ExecutionTrace) -> list[GanttBar]:
    """Extract bars from a mapping or an execution trace."""
    if isinstance(source, Mapping):
        return [
            GanttBar(machine=a.machine, task=a.task, start=a.start, finish=a.completion)
            for a in source.assignments
        ]
    if isinstance(source, ExecutionTrace):
        return [
            GanttBar(machine=r.machine, task=r.task, start=r.start, finish=r.finish)
            for r in source.records
        ]
    raise ConfigurationError(f"cannot extract Gantt bars from {type(source)!r}")


def render_gantt(
    source: Mapping | ExecutionTrace,
    width: int = 60,
    show_scale: bool = True,
) -> str:
    """Render a machine-per-row ASCII Gantt chart.

    Bars are drawn as ``[t1 ]`` segments proportional to duration;
    abutting tasks share their bracket.  A horizontal time scale is
    appended unless ``show_scale`` is false.

    Example output for the paper's MCT original mapping (Figure 6)::

        m1 |[t1           ]
        m2 |[t2    ][t4 ]
        m3 |[t3           ]
           +--------------- ...
           0     1.3    2.7   4.0
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    bars = gantt_bars(source)
    machines = (
        source.machines if not isinstance(source, Mapping) else source.etc.machines
    )
    horizon = max((b.finish for b in bars), default=0.0)
    if horizon <= 0:
        return "\n".join(f"{m} | (idle)" for m in machines)
    scale = width / horizon
    label_w = max(len(m) for m in machines)

    lines = []
    for machine in machines:
        row = [" "] * (width + 1)
        for bar in bars:
            if bar.machine != machine:
                continue
            start = int(round(bar.start * scale))
            end = max(start + 1, int(round(bar.finish * scale)))
            end = min(end, width)
            for x in range(start, end):
                row[x] = "="
            row[start] = "["
            row[min(end, width) - 1 if end - 1 > start else start] = (
                "]" if end - 1 > start else row[start]
            )
            label = bar.task
            for offset, ch in enumerate(label):
                pos = start + 1 + offset
                if pos < end - 1:
                    row[pos] = ch
        lines.append(f"{machine:<{label_w}} |" + "".join(row).rstrip())
    if show_scale:
        lines.append(f"{'':<{label_w}} +" + "-" * width)
        ticks = 4
        marks = [" "] * (width + 8)
        for k in range(ticks + 1):
            x = int(round(k * width / ticks))
            value = f"{horizon * k / ticks:.3g}"
            for offset, ch in enumerate(value):
                if x + offset < len(marks):
                    marks[x + offset] = ch
        lines.append(f"{'':<{label_w}}  " + "".join(marks).rstrip())
    return "\n".join(lines)

"""Analysis toolkit: theorem checkers, witness search, studies, rendering."""

from repro.analysis.counterexamples import (
    Counterexample,
    find_makespan_increase,
    half_integer_grid,
    search_counterexample,
)
from repro.analysis.experiments import (
    ExperimentConfig,
    RunRecord,
    run_experiment,
    stable_key,
)
from repro.analysis.dynamic_study import (
    DynamicPolicySpec,
    DynamicStudyRow,
    default_policies,
    dynamic_policy_study,
    format_dynamic_table,
)
from repro.analysis.export import (
    comparison_rows_to_rows,
    improvement_rows_to_rows,
    iterative_result_to_dict,
    run_records_to_rows,
    write_csv,
    write_json,
)
from repro.analysis.gantt import GanttBar, gantt_bars, render_gantt
from repro.analysis.parallel import run_experiment_parallel, split_into_cells
from repro.analysis.invariance import (
    INVARIANT_HEURISTICS,
    InvarianceReport,
    InvarianceViolation,
    is_iteration_invariant,
    makespans_monotone,
    verify_invariance,
)
from repro.analysis.report import ExampleOutcome, build_report, paper_example_outcomes
from repro.analysis.robustness import (
    DegradationSummary,
    makespan_degradation,
    perturbed_finish_times,
    robustness_radius,
)
from repro.analysis.stats import Summary, bootstrap_ci, proportion_ci, summarize
from repro.analysis.study import (
    ComparisonRow,
    ImprovementRow,
    format_comparison_table,
    format_improvement_table,
    heuristic_comparison,
    improvement_study,
)
from repro.analysis.trajectory import (
    IterationTrajectory,
    render_series,
    sparkline,
    trajectory_of,
)
from repro.analysis.tables import (
    render_allocation_table,
    render_comparison,
    render_etc_table,
    render_finish_times,
    render_iteration_overview,
    render_kpb_table,
    render_sufferage_table,
    render_swa_table,
)

__all__ = [
    "Counterexample",
    "find_makespan_increase",
    "search_counterexample",
    "half_integer_grid",
    "ExperimentConfig",
    "RunRecord",
    "run_experiment",
    "stable_key",
    "run_records_to_rows",
    "improvement_rows_to_rows",
    "comparison_rows_to_rows",
    "iterative_result_to_dict",
    "write_csv",
    "write_json",
    "DynamicPolicySpec",
    "DynamicStudyRow",
    "default_policies",
    "dynamic_policy_study",
    "format_dynamic_table",
    "GanttBar",
    "gantt_bars",
    "render_gantt",
    "run_experiment_parallel",
    "split_into_cells",
    "INVARIANT_HEURISTICS",
    "InvarianceReport",
    "InvarianceViolation",
    "is_iteration_invariant",
    "makespans_monotone",
    "verify_invariance",
    "ExampleOutcome",
    "build_report",
    "paper_example_outcomes",
    "DegradationSummary",
    "makespan_degradation",
    "perturbed_finish_times",
    "robustness_radius",
    "Summary",
    "summarize",
    "bootstrap_ci",
    "proportion_ci",
    "ImprovementRow",
    "improvement_study",
    "format_improvement_table",
    "ComparisonRow",
    "heuristic_comparison",
    "format_comparison_table",
    "render_etc_table",
    "render_allocation_table",
    "render_swa_table",
    "render_kpb_table",
    "render_sufferage_table",
    "render_finish_times",
    "render_comparison",
    "render_iteration_overview",
    "IterationTrajectory",
    "trajectory_of",
    "sparkline",
    "render_series",
]

"""Per-iteration metric trajectories and ASCII series rendering.

The paper's figures visualise single mappings; for *runs* of the
iterative technique the interesting object is the trajectory — how the
makespan, the average finishing time and the remaining work evolve as
machines are frozen.  This module extracts those series from an
:class:`~repro.core.iterative.IterativeResult` and renders them as
fixed-width charts (no plotting dependency).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.iterative import IterativeResult
from repro.exceptions import ConfigurationError

__all__ = [
    "IterationTrajectory",
    "trajectory_of",
    "sparkline",
    "render_series",
]

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


@dataclass(frozen=True)
class IterationTrajectory:
    """Per-iteration series of one iterative run."""

    heuristic: str
    makespans: tuple[float, ...]
    average_finishes: tuple[float, ...]
    machines_remaining: tuple[int, ...]
    tasks_remaining: tuple[int, ...]

    @property
    def num_iterations(self) -> int:
        return len(self.makespans)

    def monotone(self, tol: float = 1e-9) -> bool:
        """True when the makespan series never increases."""
        return all(
            b <= a + tol for a, b in zip(self.makespans, self.makespans[1:])
        )


def trajectory_of(result: IterativeResult) -> IterationTrajectory:
    """Extract the metric series from an iterative run."""
    return IterationTrajectory(
        heuristic=result.heuristic_name,
        makespans=result.makespans(),
        average_finishes=tuple(
            float(rec.mapping.finish_time_vector().mean())
            for rec in result.iterations
        ),
        machines_remaining=tuple(
            rec.etc.num_machines for rec in result.iterations
        ),
        tasks_remaining=tuple(rec.etc.num_tasks for rec in result.iterations),
    )


def sparkline(values: Sequence[float]) -> str:
    """Unicode sparkline of a series (min..max mapped to 8 levels)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot sparkline an empty series")
    lo, hi = float(arr.min()), float(arr.max())
    if hi - lo < 1e-15:
        return _SPARK_LEVELS[0] * arr.size
    scaled = (arr - lo) / (hi - lo) * (len(_SPARK_LEVELS) - 1)
    return "".join(_SPARK_LEVELS[int(round(s))] for s in scaled)


def render_series(
    values: Sequence[float],
    label: str = "",
    width: int = 50,
    height: int = 8,
) -> str:
    """Fixed-width dot chart of a series (one column per point,
    linearly resampled to ``width`` when longer)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot render an empty series")
    if width < 2 or height < 2:
        raise ConfigurationError("width and height must be >= 2")
    if arr.size > width:
        idx = np.linspace(0, arr.size - 1, width)
        arr = np.interp(idx, np.arange(arr.size), arr)
    lo, hi = float(arr.min()), float(arr.max())
    span = hi - lo if hi > lo else 1.0
    # each point lands in exactly one row: 0 (bottom) .. height-1 (top)
    levels = np.minimum(((arr - lo) / span * height).astype(int), height - 1)
    rows = []
    for level in range(height - 1, -1, -1):
        cells = ["*" if lv == level else " " for lv in levels]
        if level == height - 1:
            prefix = f"{hi:>10.4g} |"
        elif level == 0:
            prefix = f"{lo:>10.4g} |"
        else:
            prefix = " " * 10 + " |"
        rows.append(prefix + "".join(cells).rstrip())
    rows.append(" " * 11 + "+" + "-" * len(arr))
    if label:
        rows.insert(0, label)
    return "\n".join(rows)

"""Witness search: instances where the iterative technique backfires.

The paper demonstrates by worked example that SWA, K-percent Best and
Sufferage can *increase* makespan under the iterative technique even
with deterministic tie-breaking, and that MET/MCT/Min-Min can do so
under random tie-breaking.  This module automates finding such
witnesses:

* :func:`find_makespan_increase` — random sampling over a value grid
  until an instance with a makespan increase appears;
* :func:`search_counterexample` — random-restart hill climbing that can
  additionally target *exact* completion-time vectors; this is the
  procedure that derived the frozen Sufferage example matrix in
  :mod:`repro.etc.witness`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.iterative import IterativeResult, IterativeScheduler
from repro.core.ties import DeterministicTieBreaker, TieBreaker
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics.base import Heuristic, get_heuristic

__all__ = [
    "Counterexample",
    "find_makespan_increase",
    "search_counterexample",
    "half_integer_grid",
]


def half_integer_grid(low: float = 0.5, high: float = 10.0) -> np.ndarray:
    """The half-integer value grid used for human-readable witnesses."""
    if low <= 0 or high <= low:
        raise ConfigurationError(f"need 0 < low < high, got {low}, {high}")
    return np.arange(round(low * 2), round(high * 2) + 1) * 0.5


@dataclass(frozen=True)
class Counterexample:
    """A witness instance together with its iterative run."""

    etc: ETCMatrix
    result: IterativeResult

    @property
    def original_makespan(self) -> float:
        return self.result.original.makespan

    @property
    def peak_makespan(self) -> float:
        return max(self.result.makespans())

    @property
    def increase(self) -> float:
        """Largest single-step makespan growth across iterations."""
        spans = self.result.makespans()
        return max((b - a for a, b in zip(spans, spans[1:])), default=0.0)

    def describe(self) -> str:
        return (
            f"{self.result.heuristic_name}: makespan "
            f"{self.original_makespan:.6g} -> peak {self.peak_makespan:.6g} "
            f"on a {self.etc.num_tasks}x{self.etc.num_machines} instance"
        )


def _scheduler_for(
    heuristic: Heuristic | str | Callable[[], Heuristic],
    tie_breaker_factory: Callable[[], TieBreaker] | None,
) -> Callable[[], IterativeScheduler]:
    def build() -> IterativeScheduler:
        if isinstance(heuristic, str):
            h: Heuristic = get_heuristic(heuristic)
        elif isinstance(heuristic, Heuristic):
            h = heuristic
        else:
            h = heuristic()
        breaker = (
            tie_breaker_factory() if tie_breaker_factory else DeterministicTieBreaker()
        )
        return IterativeScheduler(h, tie_breaker=breaker)

    return build


def find_makespan_increase(
    heuristic: Heuristic | str | Callable[[], Heuristic],
    *,
    num_tasks: int = 8,
    num_machines: int = 3,
    trials: int = 2000,
    value_grid: Sequence[float] | np.ndarray | None = None,
    tie_breaker_factory: Callable[[], TieBreaker] | None = None,
    rng: np.random.Generator | int | None = None,
) -> Counterexample | None:
    """Randomly sample instances until one increases its makespan.

    ``tie_breaker_factory`` builds a fresh policy per trial (pass e.g.
    ``lambda: RandomTieBreaker(rng)`` to hunt the MET/MCT/Min-Min
    random-tie phenomenon).  Returns ``None`` when no witness appears
    within ``trials`` samples.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    grid = np.asarray(value_grid if value_grid is not None else half_integer_grid())
    build = _scheduler_for(heuristic, tie_breaker_factory)
    for _ in range(trials):
        values = gen.choice(grid, size=(num_tasks, num_machines))
        etc = ETCMatrix(values)
        result = build().run(etc)
        if result.makespan_increased():
            return Counterexample(etc=etc, result=result)
    return None


def search_counterexample(
    heuristic: Heuristic | str | Callable[[], Heuristic],
    *,
    num_tasks: int = 9,
    num_machines: int = 3,
    target_original: Sequence[float] | None = None,
    target_first_iteration: Sequence[float] | None = None,
    value_grid: Sequence[float] | np.ndarray | None = None,
    restarts: int = 50,
    steps: int = 2000,
    rng: np.random.Generator | int | None = None,
    tie_breaker_factory: Callable[[], TieBreaker] | None = None,
) -> Counterexample | None:
    """Random-restart hill climbing toward a makespan-increase witness.

    When ``target_original`` / ``target_first_iteration`` (sorted
    finishing-time vectors) are given, the objective is the L1 distance
    to those vectors — this mode reconstructs paper examples whose
    matrices are unavailable but whose completion times are documented.
    Without targets the objective is simply to maximise the makespan
    increase, returning the first strict-increase witness found.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    grid = np.asarray(value_grid if value_grid is not None else half_integer_grid())
    build = _scheduler_for(heuristic, tie_breaker_factory)
    t_orig = None if target_original is None else np.sort(np.asarray(target_original))
    t_iter = (
        None
        if target_first_iteration is None
        else np.sort(np.asarray(target_first_iteration))
    )
    targeted = t_orig is not None or t_iter is not None

    def objective(values: np.ndarray) -> tuple[float, IterativeResult | None]:
        """Lower is better; 0 means 'witness found' in targeted mode."""
        try:
            etc = ETCMatrix(values)
            result = build().run(etc, max_iterations=2)
        except Exception:
            return (np.inf, None)
        if targeted:
            dist = 0.0
            orig = np.sort(result.original.mapping.finish_time_vector())
            if t_orig is not None:
                if orig.size != t_orig.size:
                    return (np.inf, None)
                dist += float(np.abs(orig - t_orig).sum())
                # the makespan machine must be uniquely determined
                if orig.size > 1 and orig[-1] <= orig[-2] + 1e-9:
                    dist += 1.0
            if t_iter is not None and result.num_iterations > 1:
                it = np.sort(result.iterations[1].mapping.finish_time_vector())
                if it.size != t_iter.size:
                    return (np.inf, None)
                dist += float(np.abs(it - t_iter).sum())
            elif t_iter is not None:
                return (np.inf, None)
            return (dist, result)
        increase = max(
            (
                b - a
                for a, b in zip(result.makespans(), result.makespans()[1:])
            ),
            default=0.0,
        )
        return (-increase, result)

    best: tuple[float, Counterexample | None] = (np.inf, None)
    for _ in range(restarts):
        current = gen.choice(grid, size=(num_tasks, num_machines))
        score, result = objective(current)
        for _ in range(steps):
            candidate = current.copy()
            for _ in range(int(gen.integers(1, 3))):
                i = int(gen.integers(0, num_tasks))
                j = int(gen.integers(0, num_machines))
                candidate[i, j] = gen.choice(grid)
            cand_score, cand_result = objective(candidate)
            if cand_score <= score:
                current, score, result = candidate, cand_score, cand_result
            if targeted and score == 0.0:
                break
            if not targeted and score < 0.0:
                break
        if result is not None and score < best[0]:
            # Re-run without the iteration cap for a complete trace.
            full = build().run(ETCMatrix(current))
            best = (score, Counterexample(etc=ETCMatrix(current), result=full))
        if targeted and best[0] == 0.0:
            return best[1]
        if not targeted and best[0] < 0.0:
            return best[1]
    if targeted:
        return best[1] if best[0] == 0.0 else None
    return best[1] if best[0] < 0.0 else None

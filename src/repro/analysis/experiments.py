"""Experiment grid runner.

Runs the iterative technique for a grid of heuristics × ETC classes ×
instances, collecting one :class:`RunRecord` per (heuristic, instance)
cell.  All randomness is derived from a single seed: instance
generation, random tie-breaking and stochastic heuristics (Genitor,
random baseline) each get independent child generators via
``numpy.random.SeedSequence`` spawning, so adding a heuristic to the
grid never perturbs another heuristic's stream.
"""

from __future__ import annotations

import time
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field

import numpy as np

from repro.core.iterative import IterativeScheduler
from repro.core.metrics import IterativeComparison, compare_iterative
from repro.core.seeding import SeededIterativeScheduler
from repro.core.ties import DeterministicTieBreaker, RandomTieBreaker
from repro.etc.generation import Consistency, Heterogeneity, generate_ensemble
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ConfigurationError
from repro.heuristics.backends import get_backend
from repro.obs.metrics import TIME_BUCKETS
from repro.obs.tracer import get_tracer

__all__ = [
    "ExperimentConfig",
    "RunRecord",
    "run_experiment",
    "stable_key",
    "cell_instance_rng",
    "config_to_dict",
    "run_record_to_dict",
    "run_record_from_dict",
]

#: Heuristics that accept an ``rng`` constructor argument.
_STOCHASTIC = {"genitor", "random", "simulated-annealing", "tabu-search", "gsa"}


def stable_key(*parts: str) -> int:
    """Process-stable 32-bit key for SeedSequence spawn keys.

    Python's builtin ``hash`` of strings is randomised per process
    (PYTHONHASHSEED), which would make experiment grids irreproducible
    across runs; CRC32 is stable everywhere.
    """
    import zlib

    return zlib.crc32("\x1f".join(parts).encode("utf-8"))


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative description of one experiment grid."""

    heuristics: tuple[str, ...] = ("min-min", "mct", "met")
    num_tasks: int = 50
    num_machines: int = 8
    heterogeneities: tuple[Heterogeneity, ...] = (Heterogeneity.HIHI,)
    consistencies: tuple[Consistency, ...] = (Consistency.INCONSISTENT,)
    instances_per_cell: int = 20
    tie_policy: str = "deterministic"  # or "random"
    generation_method: str = "range"  # or "cvb"
    seeded_iterations: bool = False  # use SeededIterativeScheduler
    seed: int = 0
    #: Kernel backend (see :mod:`repro.heuristics.backends`); decision-
    #: identical by contract, so it changes wall-clock only, never records.
    backend: str = "incremental"
    #: Extra constructor kwargs per heuristic name, e.g.
    #: ``{"genitor": {"iterations": 200, "population_size": 20}}``.
    heuristic_kwargs: MappingABC[str, MappingABC[str, object]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.tie_policy not in ("deterministic", "random"):
            raise ConfigurationError(f"unknown tie policy {self.tie_policy!r}")
        get_backend(self.backend)  # fail fast on unknown backends
        if self.instances_per_cell < 1:
            raise ConfigurationError(
                f"instances_per_cell must be >= 1, got {self.instances_per_cell}"
            )


@dataclass(frozen=True)
class RunRecord:
    """One (heuristic, instance) outcome."""

    heuristic: str
    heterogeneity: Heterogeneity
    consistency: Consistency
    instance_index: int
    tie_policy: str
    comparison: IterativeComparison
    num_iterations: int

    @property
    def etc_class(self) -> str:
        return f"{self.heterogeneity.value}/{self.consistency.value}"


def config_to_dict(config: ExperimentConfig) -> dict:
    """Canonical JSON-able form of a config.

    This is the cache/ledger identity of an experiment: it covers every
    field that determines the records (seed, grid shape, heuristic and
    iterative parameters) in a stable layout, so
    ``config_hash(config_to_dict(c))`` (see :mod:`repro.obs.ledger`)
    content-addresses the experiment across processes and machines.
    ``heuristic_kwargs`` values must be JSON-able plain values — the
    same constraint the parallel runner already imposes (picklable, no
    live RNGs).
    """
    return {
        "heuristics": list(config.heuristics),
        "num_tasks": config.num_tasks,
        "num_machines": config.num_machines,
        "heterogeneities": [h.value for h in config.heterogeneities],
        "consistencies": [c.value for c in config.consistencies],
        "instances_per_cell": config.instances_per_cell,
        "tie_policy": config.tie_policy,
        "generation_method": config.generation_method,
        "seeded_iterations": config.seeded_iterations,
        "seed": config.seed,
        "heuristic_kwargs": {
            name: dict(kwargs)
            for name, kwargs in sorted(config.heuristic_kwargs.items())
        },
        # Backends are decision-identical, so the default is omitted to
        # keep cache/ledger identities of pre-backend configs unchanged;
        # a non-default backend is recorded for provenance.
        **({"backend": config.backend} if config.backend != "incremental" else {}),
    }


def run_record_to_dict(record: RunRecord) -> dict:
    """Lossless JSON-able form of one record (cell-cache entry rows).

    Unlike :func:`repro.analysis.export.run_records_to_rows` (a
    flattened view for external tooling), this keeps every per-machine
    comparison so :func:`run_record_from_dict` can rebuild an *equal*
    :class:`RunRecord` — floats round-trip exactly through JSON.
    """
    c = record.comparison
    return {
        "heuristic": record.heuristic,
        "heterogeneity": record.heterogeneity.value,
        "consistency": record.consistency.value,
        "instance_index": record.instance_index,
        "tie_policy": record.tie_policy,
        "num_iterations": record.num_iterations,
        "comparison": {
            "heuristic": c.heuristic,
            "original_makespan": float(c.original_makespan),
            "final_makespan": float(c.final_makespan),
            "makespan_increased": c.makespan_increased,
            "mapping_changed": c.mapping_changed,
            "machines": [
                {
                    "machine": m.machine,
                    "original": float(m.original),
                    "iterative": float(m.iterative),
                }
                for m in c.machines
            ],
        },
    }


def run_record_from_dict(payload: dict) -> RunRecord:
    """Invert :func:`run_record_to_dict` (exact round trip)."""
    from repro.core.metrics import MachineComparison

    c = payload["comparison"]
    comparison = IterativeComparison(
        heuristic=c["heuristic"],
        machines=tuple(
            MachineComparison(
                machine=m["machine"],
                original=m["original"],
                iterative=m["iterative"],
            )
            for m in c["machines"]
        ),
        original_makespan=c["original_makespan"],
        final_makespan=c["final_makespan"],
        makespan_increased=c["makespan_increased"],
        mapping_changed=c["mapping_changed"],
    )
    return RunRecord(
        heuristic=payload["heuristic"],
        heterogeneity=Heterogeneity(payload["heterogeneity"]),
        consistency=Consistency(payload["consistency"]),
        instance_index=payload["instance_index"],
        tie_policy=payload["tie_policy"],
        comparison=comparison,
        num_iterations=payload["num_iterations"],
    )


def cell_instance_rng(
    config: ExperimentConfig, het: Heterogeneity, cons: Consistency
) -> np.random.Generator:
    """The exact per-cell instance-generation stream of :func:`run_experiment`.

    Exposed so out-of-band instance producers — the store publisher in
    :mod:`repro.analysis.runner` streams a cell's ensemble into an
    :class:`~repro.etc.store.ETCStore` before workers attach — draw the
    byte-identical instances the in-process path would generate.
    """
    root = np.random.SeedSequence(config.seed)
    instance_seed = root.spawn(1)[0]
    return np.random.default_rng(
        np.random.SeedSequence(
            entropy=instance_seed.entropy,
            spawn_key=(stable_key(het.value, cons.value),),
        )
    )


def run_experiment(
    config: ExperimentConfig,
    *,
    instances_for=None,
) -> list[RunRecord]:
    """Execute the grid; returns one record per heuristic per instance.

    ``instances_for`` optionally overrides instance generation: a
    callable ``(heterogeneity, consistency) -> Sequence[ETCMatrix]``
    whose matrices replace the cell's generated ensemble (the store
    transport hands back memmap views here).  Providers must supply
    value-identical instances — per-cell RNG streams are independent
    (:func:`cell_instance_rng`), so skipping generation perturbs no
    other stream and the records stay byte-identical.
    """
    root = np.random.SeedSequence(config.seed)
    instance_seed, heuristic_seed, tie_seed = root.spawn(3)
    tracer = get_tracer()
    records: list[RunRecord] = []

    for het in config.heterogeneities:
        for cons in config.consistencies:
            cell_started = time.perf_counter()
            with tracer.span(
                "experiment.cell",
                heterogeneity=het.value,
                consistency=cons.value,
                instances=config.instances_per_cell,
                heuristics=tuple(config.heuristics),
            ):
                # Span-only phase (no event), so the traced event
                # stream stays byte-identical to pre-span releases.
                with tracer.phase(
                    "experiment.instances", count=config.instances_per_cell
                ):
                    if instances_for is not None:
                        instances = list(instances_for(het, cons))
                    else:
                        cell_rng = np.random.default_rng(
                            np.random.SeedSequence(
                                entropy=instance_seed.entropy,
                                spawn_key=(stable_key(het.value, cons.value),),
                            )
                        )
                        instances = generate_ensemble(
                            config.instances_per_cell,
                            config.num_tasks,
                            config.num_machines,
                            heterogeneity=het,
                            consistency=cons,
                            method=config.generation_method,
                            rng=cell_rng,
                        )
                for name in config.heuristics:
                    h_seed, t_seed = np.random.SeedSequence(
                        entropy=heuristic_seed.entropy,
                        spawn_key=(stable_key(name, het.value, cons.value),),
                    ).spawn(2)
                    h_rng = np.random.default_rng(h_seed)
                    t_rng = np.random.default_rng(t_seed)
                    for idx, etc in enumerate(instances):
                        records.append(
                            _run_one(config, name, het, cons, idx, etc, h_rng, t_rng)
                        )
            if tracer.enabled:
                # Wall-clock histogram (``_s`` suffix = timing values,
                # compared structurally, not byte-identically, by the
                # merge properties — see repro.obs.metrics).
                tracer.observe(
                    "experiment.cell_runtime_s",
                    time.perf_counter() - cell_started,
                    buckets=TIME_BUCKETS,
                )
    return records


def _run_one(
    config: ExperimentConfig,
    name: str,
    het: Heterogeneity,
    cons: Consistency,
    idx: int,
    etc: ETCMatrix,
    h_rng: np.random.Generator,
    t_rng: np.random.Generator,
) -> RunRecord:
    kwargs = dict(config.heuristic_kwargs.get(name, {}))
    if name in _STOCHASTIC and "rng" not in kwargs:
        kwargs["rng"] = h_rng
    heuristic = get_backend(config.backend).make(name, **kwargs)
    breaker = (
        DeterministicTieBreaker()
        if config.tie_policy == "deterministic"
        else RandomTieBreaker(t_rng)
    )
    scheduler_cls = (
        SeededIterativeScheduler if config.seeded_iterations else IterativeScheduler
    )
    scheduler = scheduler_cls(heuristic, tie_breaker=breaker)
    result = scheduler.run(etc)
    tracer = get_tracer()
    if tracer.enabled:
        tracer.event(
            "experiment.run",
            heuristic=name,
            heterogeneity=het.value,
            consistency=cons.value,
            instance=idx,
            iterations=result.num_iterations,
            makespan=result.original.makespan,
            makespan_increased=result.makespan_increased(),
        )
        tracer.count("experiment.runs")
        tracer.observe("experiment.iterations", result.num_iterations)
        # Last-writer-wins gauge: merged value equals the serial run's
        # because snapshots merge in cell order.
        tracer.gauge("experiment.last_original_makespan", result.original.makespan)
    return RunRecord(
        heuristic=name,
        heterogeneity=het,
        consistency=cons,
        instance_index=idx,
        tie_policy=config.tie_policy,
        comparison=compare_iterative(result),
        num_iterations=result.num_iterations,
    )

"""Export experiment artifacts to CSV/JSON.

Turns the in-memory result objects into plain-dict rows and writes them
out, so study outputs can be consumed by external plotting/statistics
tooling without importing this library.
"""

from __future__ import annotations

import csv
import json
from collections.abc import Iterable, Mapping as MappingABC, Sequence
from pathlib import Path

from repro.analysis.experiments import RunRecord
from repro.analysis.study import ComparisonRow, ImprovementRow
from repro.core.iterative import IterativeResult
from repro.exceptions import ConfigurationError

__all__ = [
    "run_records_to_rows",
    "improvement_rows_to_rows",
    "comparison_rows_to_rows",
    "iterative_result_to_dict",
    "write_csv",
    "write_json",
]


def run_records_to_rows(records: Iterable[RunRecord]) -> list[dict]:
    """Flatten :class:`RunRecord` objects to one dict per run."""
    rows = []
    for r in records:
        c = r.comparison
        rows.append(
            {
                "heuristic": r.heuristic,
                "heterogeneity": r.heterogeneity.value,
                "consistency": r.consistency.value,
                "instance": r.instance_index,
                "tie_policy": r.tie_policy,
                "num_iterations": r.num_iterations,
                "original_makespan": c.original_makespan,
                "final_makespan": c.final_makespan,
                "makespan_increased": c.makespan_increased,
                "mapping_changed": c.mapping_changed,
                "machines_improved": c.num_improved,
                "machines_worsened": c.num_worsened,
                "mean_delta": c.mean_delta,
            }
        )
    return rows


def improvement_rows_to_rows(rows: Iterable[ImprovementRow]) -> list[dict]:
    """Flatten improvement-study aggregates (E23)."""
    return [
        {
            "heuristic": r.heuristic,
            "tie_policy": r.tie_policy,
            "runs": r.runs,
            "mapping_change_rate": r.mapping_change_rate,
            "makespan_increase_rate": r.makespan_increase_rate,
            "machine_improved_rate": r.machine_improved_rate,
            "machine_worsened_rate": r.machine_worsened_rate,
            "mean_improvement": r.mean_improvement.mean,
            "mean_improvement_ci_low": r.mean_improvement.ci_low,
            "mean_improvement_ci_high": r.mean_improvement.ci_high,
        }
        for r in rows
    ]


def comparison_rows_to_rows(rows: Iterable[ComparisonRow]) -> list[dict]:
    """Flatten cross-heuristic comparison aggregates (E24)."""
    return [
        {
            "heuristic": r.heuristic,
            "heterogeneity": r.heterogeneity.value,
            "consistency": r.consistency.value,
            "mean_makespan": r.mean_makespan,
            "normalized": r.normalized,
        }
        for r in rows
    ]


def iterative_result_to_dict(result: IterativeResult) -> dict:
    """Full JSON-serialisable dump of an iterative run.

    Includes per-iteration machine sets, mappings and makespans — the
    complete evidence needed to audit a run without re-executing it.
    """
    return {
        "heuristic": result.heuristic_name,
        "tasks": list(result.etc.tasks),
        "machines": list(result.etc.machines),
        "initial_ready_times": dict(result.initial_ready_times),
        "final_finish_times": dict(result.final_finish_times),
        "removal_order": list(result.removal_order),
        "unfrozen": list(result.unfrozen),
        "makespans": list(result.makespans()),
        "makespan_increased": result.makespan_increased(),
        "mapping_changed": result.mapping_changed(),
        "iterations": [
            {
                "index": rec.index,
                "machines": list(rec.etc.machines),
                "tasks": list(rec.etc.tasks),
                "makespan": rec.makespan,
                "frozen_machine": rec.frozen_machine,
                "frozen_tasks": list(rec.frozen_tasks),
                "assignments": rec.mapping.to_dict(),
                "finish_times": rec.finish_times(),
            }
            for rec in result.iterations
        ],
    }


def write_csv(rows: Sequence[MappingABC], path: str | Path) -> None:
    """Write dict rows as CSV (columns = union of keys, first-row order
    first)."""
    rows = list(rows)
    if not rows:
        raise ConfigurationError("no rows to write")
    fieldnames = list(rows[0])
    for row in rows[1:]:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


def write_json(payload, path: str | Path, indent: int = 2) -> None:
    """Write any JSON-serialisable payload."""
    Path(path).write_text(json.dumps(payload, indent=indent), encoding="utf-8")

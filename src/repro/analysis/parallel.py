"""Parallel experiment execution (compatibility surface).

Experiment grids are embarrassingly parallel across (heterogeneity,
consistency) cells: each cell owns an independent, stably-seeded RNG
stream (see :mod:`repro.analysis.experiments`), so cells can run in
separate processes and the merged result is *bit-identical* to the
serial run — the equivalence is asserted by the test suite.

The execution engine lives in :mod:`repro.analysis.runner` (sharded
work queue, on-disk cell cache, resume, timeouts and quarantine);
:func:`run_experiment_parallel` is retained as the historical drop-in
replacement for :func:`repro.analysis.experiments.run_experiment` with
the legacy contract: no cache side effects, and a failing cell
re-raises its original exception.

Constraint: the config must be picklable — in particular, pass
heuristic kwargs as plain values (ints, floats, strings), not live
``numpy.random.Generator`` objects (stochastic heuristics are seeded
internally per cell anyway).

Observability: when the caller's current tracer (see
:mod:`repro.obs.tracer`) is enabled, each worker process runs its cell
under a fresh :class:`~repro.obs.tracer.CollectingTracer`, ships the
resulting :class:`~repro.obs.tracer.ObsSnapshot` back with the records,
and the parent merges the snapshots **in cell order** — so the merged
event stream and counter totals are identical to a serial run under the
same tracer (asserted by the property suite).
"""

from __future__ import annotations

import dataclasses

from repro.analysis.experiments import ExperimentConfig, RunRecord

__all__ = ["split_into_cells", "run_experiment_parallel"]


def split_into_cells(config: ExperimentConfig) -> list[ExperimentConfig]:
    """One sub-config per (heterogeneity, consistency) cell.

    Because per-cell seed streams are keyed by the cell's own labels
    (not by grid position), each sub-config reproduces exactly the
    records the full grid would produce for that cell.  An empty grid
    (no heterogeneities or no consistencies) yields no cells.
    """
    return [
        dataclasses.replace(
            config, heterogeneities=(het,), consistencies=(cons,)
        )
        for het in config.heterogeneities
        for cons in config.consistencies
    ]


def run_experiment_parallel(
    config: ExperimentConfig,
    max_workers: int | None = None,
    progress=None,
) -> list[RunRecord]:
    """Run the grid across processes; output order matches the serial run.

    ``progress`` is an optional :class:`~repro.obs.progress.ProgressReporter`
    advanced once per completed (heterogeneity, consistency) cell.  It
    renders to its own stream and never touches the tracer, so the
    merged event stream stays byte-identical with progress on or off.

    This is a thin wrapper over :func:`repro.analysis.runner.run_grid`
    with caching disabled and ``on_error="raise"`` — existing callers
    see exactly the pre-runner behaviour.  Use ``run_grid`` directly
    for resumable, cached, quarantining execution.
    """
    from repro.analysis.runner import run_grid

    result = run_grid(
        config,
        max_workers=max_workers,
        progress=progress,
        cache_dir=None,
        retries=0,
        on_error="raise",
    )
    return list(result.records)

"""Parallel experiment execution.

Experiment grids are embarrassingly parallel across (heterogeneity,
consistency) cells: each cell owns an independent, stably-seeded RNG
stream (see :mod:`repro.analysis.experiments`), so cells can run in
separate processes and the merged result is *bit-identical* to the
serial run — the equivalence is asserted by the test suite.

Use :func:`run_experiment_parallel` as a drop-in replacement for
:func:`repro.analysis.experiments.run_experiment` on multi-core
machines; speedup is roughly ``min(num_cells, workers)`` since cells
dominate the cost.

Constraint: the config must be picklable — in particular, pass
heuristic kwargs as plain values (ints, floats, strings), not live
``numpy.random.Generator`` objects (stochastic heuristics are seeded
internally per cell anyway).

Observability: when the caller's current tracer (see
:mod:`repro.obs.tracer`) is enabled, each worker process runs its cell
under a fresh :class:`~repro.obs.tracer.CollectingTracer`, ships the
resulting :class:`~repro.obs.tracer.ObsSnapshot` back with the records,
and the parent merges the snapshots **in cell order** — so the merged
event stream and counter totals are identical to a serial run under the
same tracer (asserted by the property suite).
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor

from repro.analysis.experiments import ExperimentConfig, RunRecord, run_experiment
from repro.exceptions import ConfigurationError
from repro.obs.progress import NULL_PROGRESS
from repro.obs.tracer import CollectingTracer, ObsSnapshot, get_tracer, use_tracer

__all__ = ["split_into_cells", "run_experiment_parallel"]


def _cell_label(cell: ExperimentConfig) -> str:
    return f"{cell.heterogeneities[0].value}/{cell.consistencies[0].value}"


def _run_cell_observed(
    config: ExperimentConfig,
) -> tuple[list[RunRecord], ObsSnapshot]:
    """Worker entry point: run one cell under a fresh collector."""
    with use_tracer(CollectingTracer()) as tracer:
        records = run_experiment(config)
    return records, tracer.snapshot()


def split_into_cells(config: ExperimentConfig) -> list[ExperimentConfig]:
    """One sub-config per (heterogeneity, consistency) cell.

    Because per-cell seed streams are keyed by the cell's own labels
    (not by grid position), each sub-config reproduces exactly the
    records the full grid would produce for that cell.
    """
    return [
        dataclasses.replace(
            config, heterogeneities=(het,), consistencies=(cons,)
        )
        for het in config.heterogeneities
        for cons in config.consistencies
    ]


def run_experiment_parallel(
    config: ExperimentConfig,
    max_workers: int | None = None,
    progress=None,
) -> list[RunRecord]:
    """Run the grid across processes; output order matches the serial run.

    ``progress`` is an optional :class:`~repro.obs.progress.ProgressReporter`
    advanced once per completed (heterogeneity, consistency) cell.  It
    renders to its own stream and never touches the tracer, so the
    merged event stream stays byte-identical with progress on or off.
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    progress = progress if progress is not None else NULL_PROGRESS
    cells = split_into_cells(config)
    if progress.enabled:
        progress.total = len(cells)
    progress.start()
    try:
        if len(cells) == 1 or max_workers == 1:
            # Serial fallback: runs under the caller's tracer directly.
            records = []
            for cell in cells:
                records.extend(run_experiment(cell))
                progress.advance(_cell_label(cell))
            return records
        tracer = get_tracer()
        records = []
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            if not tracer.enabled:
                for cell, cell_records in zip(cells, pool.map(run_experiment, cells)):
                    records.extend(cell_records)
                    progress.advance(_cell_label(cell))
            else:
                # pool.map yields results in submission (= cell) order, so
                # merging here is deterministic regardless of which worker
                # finished first.
                for cell, (cell_records, snapshot) in zip(
                    cells, pool.map(_run_cell_observed, cells)
                ):
                    records.extend(cell_records)
                    tracer.merge_snapshot(snapshot)
                    progress.advance(_cell_label(cell))
        return records
    finally:
        progress.finish()

"""Parallel experiment execution (compatibility surface).

Experiment grids are embarrassingly parallel across (heterogeneity,
consistency) cells: each cell owns an independent, stably-seeded RNG
stream (see :mod:`repro.analysis.experiments`), so cells can run in
separate processes and the merged result is *bit-identical* to the
serial run — the equivalence is asserted by the test suite.

The execution engine lives in :mod:`repro.analysis.runner` (sharded
work queue, on-disk cell cache, resume, timeouts and quarantine);
:func:`run_experiment_parallel` is retained as the historical drop-in
replacement for :func:`repro.analysis.experiments.run_experiment` with
the legacy contract: no cache side effects, and a failing cell
re-raises its original exception.

Constraint: the config must be picklable — in particular, pass
heuristic kwargs as plain values (ints, floats, strings), not live
``numpy.random.Generator`` objects (stochastic heuristics are seeded
internally per cell anyway).

Observability: when the caller's current tracer (see
:mod:`repro.obs.tracer`) is enabled, each worker process runs its cell
under a fresh :class:`~repro.obs.tracer.CollectingTracer`, ships the
resulting :class:`~repro.obs.tracer.ObsSnapshot` back with the records,
and the parent merges the snapshots **in cell order** — so the merged
event stream and counter totals are identical to a serial run under the
same tracer (asserted by the property suite).  Worker span records
(:mod:`repro.obs.spans`) merge the same way; cache-backed
:func:`~repro.analysis.runner.run_grid` runs additionally thread one
trace id through every worker so the merged spans form a single tree.
"""

from __future__ import annotations

import dataclasses
import os
import secrets

import numpy as np

from repro.analysis.experiments import ExperimentConfig, RunRecord
from repro.exceptions import ConfigurationError

__all__ = [
    "split_into_cells",
    "run_experiment_parallel",
    "SHM_PREFIX",
    "ShmDescriptor",
    "SharedMemoryArena",
    "attach_shared",
    "detach_shared",
]


def split_into_cells(config: ExperimentConfig) -> list[ExperimentConfig]:
    """One sub-config per (heterogeneity, consistency) cell.

    Because per-cell seed streams are keyed by the cell's own labels
    (not by grid position), each sub-config reproduces exactly the
    records the full grid would produce for that cell.  An empty grid
    (no heterogeneities or no consistencies) yields no cells.
    """
    return [
        dataclasses.replace(
            config, heterogeneities=(het,), consistencies=(cons,)
        )
        for het in config.heterogeneities
        for cons in config.consistencies
    ]


def run_experiment_parallel(
    config: ExperimentConfig,
    max_workers: int | None = None,
    progress=None,
) -> list[RunRecord]:
    """Run the grid across processes; output order matches the serial run.

    ``progress`` is an optional :class:`~repro.obs.progress.ProgressReporter`
    advanced once per completed (heterogeneity, consistency) cell.  It
    renders to its own stream and never touches the tracer, so the
    merged event stream stays byte-identical with progress on or off.

    This is a thin wrapper over :func:`repro.analysis.runner.run_grid`
    with caching disabled and ``on_error="raise"`` — existing callers
    see exactly the pre-runner behaviour.  Use ``run_grid`` directly
    for resumable, cached, quarantining execution.
    """
    from repro.analysis.runner import run_grid

    result = run_grid(
        config,
        max_workers=max_workers,
        progress=progress,
        cache_dir=None,
        retries=0,
        on_error="raise",
    )
    return list(result.records)


# ----------------------------------------------------------------------
# Zero-copy shared-memory fan-out
# ----------------------------------------------------------------------
#: Name prefix of every segment this module creates — the leak tests
#: assert ``/dev/shm`` holds nothing with this prefix after a run.
SHM_PREFIX = "repro-shm"


@dataclasses.dataclass(frozen=True)
class ShmDescriptor:
    """Tiny picklable handle to one published array.

    This is what crosses the process boundary instead of the array:
    pickling it costs tens of bytes regardless of payload size, and the
    worker re-materialises the data as a read-only view of the same
    physical pages via :func:`attach_shared`.
    """

    name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


class SharedMemoryArena:
    """Parent-side publisher of arrays into POSIX shared memory.

    ``publish`` copies an array into a fresh segment exactly once and
    returns the :class:`ShmDescriptor` workers attach by name — the
    "publish once, fan out descriptors" half of the zero-copy transport.
    The arena owns every segment it creates: ``close()`` (or leaving the
    ``with`` block, normally or via an exception) closes **and unlinks**
    them all, so no run — including an aborted one — leaves segments
    behind in ``/dev/shm``.
    """

    def __init__(self) -> None:
        self._segments: list = []
        self._token = secrets.token_hex(4)
        self._counter = 0

    def publish(self, values: np.ndarray) -> ShmDescriptor:
        """Copy ``values`` into a new shared segment (one memcpy)."""
        from multiprocessing import shared_memory

        arr = np.ascontiguousarray(values)
        if arr.nbytes == 0:
            raise ConfigurationError("cannot publish an empty array")
        name = f"{SHM_PREFIX}-{os.getpid()}-{self._token}-{self._counter}"
        self._counter += 1
        segment = shared_memory.SharedMemory(name=name, create=True, size=arr.nbytes)
        self._segments.append(segment)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=segment.buf)
        view[...] = arr
        return ShmDescriptor(name=name, shape=arr.shape, dtype=arr.dtype.str)

    def __len__(self) -> int:
        return len(self._segments)

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, []
        for segment in segments:
            try:
                segment.close()
            except OSError:  # pragma: no cover - best-effort teardown
                pass
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
            except OSError:  # pragma: no cover - best-effort teardown
                pass

    def __enter__(self) -> "SharedMemoryArena":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"SharedMemoryArena(segments={len(self._segments)})"


#: Worker-side attachment cache: segment name -> (SharedMemory, ndarray).
#: Persistent pool workers attach each published block at most once.
_ATTACHED: dict = {}


def attach_shared(descriptor: ShmDescriptor) -> np.ndarray:
    """Read-only view of a published array (worker side, cached).

    Attaching maps the publisher's pages — no bytes are copied and no
    new memory is allocated beyond page tables.  The view is cached per
    segment name so persistent workers attach once per published block
    however many work items reference it.

    On Python < 3.13 attaching *registers* the segment with the
    resource tracker (no ``track=False`` yet).  That is benign with the
    fork start method Linux pools use: forked workers share the
    parent's tracker process, registration is idempotent there, and the
    publisher's ``unlink`` performs the single matching unregister — so
    no premature unlinks and no tracker warnings.  Spawn-based
    platforms would need per-worker unregister hacks; this codebase
    targets fork.
    """
    cached = _ATTACHED.get(descriptor.name)
    if cached is not None:
        return cached[1]
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=descriptor.name)
    view = np.ndarray(
        descriptor.shape, dtype=np.dtype(descriptor.dtype), buffer=segment.buf
    )
    view.setflags(write=False)
    _ATTACHED[descriptor.name] = (segment, view)
    return view


def detach_shared(name: str | None = None) -> None:
    """Drop cached attachments (one segment, or all with ``name=None``).

    Closes the local mapping only — unlinking is the publisher's job.
    Safe to call for names never attached.
    """
    names = [name] if name is not None else list(_ATTACHED)
    for key in names:
        cached = _ATTACHED.pop(key, None)
        if cached is None:
            continue
        segment, view = cached
        del view
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass

"""Parallel experiment execution.

Experiment grids are embarrassingly parallel across (heterogeneity,
consistency) cells: each cell owns an independent, stably-seeded RNG
stream (see :mod:`repro.analysis.experiments`), so cells can run in
separate processes and the merged result is *bit-identical* to the
serial run — the equivalence is asserted by the test suite.

Use :func:`run_experiment_parallel` as a drop-in replacement for
:func:`repro.analysis.experiments.run_experiment` on multi-core
machines; speedup is roughly ``min(num_cells, workers)`` since cells
dominate the cost.

Constraint: the config must be picklable — in particular, pass
heuristic kwargs as plain values (ints, floats, strings), not live
``numpy.random.Generator`` objects (stochastic heuristics are seeded
internally per cell anyway).
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor

from repro.analysis.experiments import ExperimentConfig, RunRecord, run_experiment
from repro.exceptions import ConfigurationError

__all__ = ["split_into_cells", "run_experiment_parallel"]


def split_into_cells(config: ExperimentConfig) -> list[ExperimentConfig]:
    """One sub-config per (heterogeneity, consistency) cell.

    Because per-cell seed streams are keyed by the cell's own labels
    (not by grid position), each sub-config reproduces exactly the
    records the full grid would produce for that cell.
    """
    return [
        dataclasses.replace(
            config, heterogeneities=(het,), consistencies=(cons,)
        )
        for het in config.heterogeneities
        for cons in config.consistencies
    ]


def run_experiment_parallel(
    config: ExperimentConfig, max_workers: int | None = None
) -> list[RunRecord]:
    """Run the grid across processes; output order matches the serial run."""
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    cells = split_into_cells(config)
    if len(cells) == 1 or max_workers == 1:
        return run_experiment(config)
    records: list[RunRecord] = []
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        for cell_records in pool.map(run_experiment, cells):
            records.extend(cell_records)
    return records

"""Small statistics toolkit for the experiment harness.

Summary statistics with normal-approximation and bootstrap confidence
intervals; no scipy dependency so the core library stays numpy-only.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Summary", "summarize", "bootstrap_ci", "proportion_ci"]

#: z-value of the two-sided 95% normal interval.
_Z95 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample with a 95% CI on the mean."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.6g} ± {self.ci_high - self.mean:.3g} "
            f"(std={self.std:.4g}, range [{self.minimum:.6g}, {self.maximum:.6g}])"
        )


def summarize(sample: Sequence[float] | np.ndarray) -> Summary:
    """Mean/std/extremes with a normal-approximation 95% CI on the mean."""
    arr = np.asarray(sample, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot summarise an empty sample")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    half = _Z95 * std / np.sqrt(arr.size) if arr.size > 1 else 0.0
    return Summary(
        n=int(arr.size),
        mean=mean,
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        ci_low=mean - half,
        ci_high=mean + half,
    )


def bootstrap_ci(
    sample: Sequence[float] | np.ndarray,
    statistic=np.mean,
    level: float = 0.95,
    num_resamples: int = 2000,
    rng: np.random.Generator | int | None = None,
) -> tuple[float, float]:
    """Percentile bootstrap CI of ``statistic`` over ``sample``."""
    arr = np.asarray(sample, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < level < 1.0:
        raise ConfigurationError(f"level must be in (0, 1), got {level}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    idx = gen.integers(0, arr.size, size=(num_resamples, arr.size))
    stats = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1.0 - level) / 2.0
    return (
        float(np.quantile(stats, alpha)),
        float(np.quantile(stats, 1.0 - alpha)),
    )


def proportion_ci(successes: int, trials: int, level: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes ({successes}) must lie in [0, trials={trials}]"
        )
    if not 0.0 < level < 1.0:
        raise ConfigurationError(f"level must be in (0, 1), got {level}")
    z = _Z95 if abs(level - 0.95) < 1e-12 else _normal_quantile(1 - (1 - level) / 2)
    p = successes / trials
    denom = 1 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * np.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


def _normal_quantile(q: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < q < 1.0:
        raise ConfigurationError(f"quantile must be in (0, 1), got {q}")
    # Coefficients of Peter Acklam's approximation (|eps| < 1.15e-9).
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low = 0.02425
    if q < p_low:
        u = np.sqrt(-2 * np.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1
        )
    if q > 1 - p_low:
        u = np.sqrt(-2 * np.log(1 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / (
            (((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1
        )
    u = q - 0.5
    r = u * u
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
    )

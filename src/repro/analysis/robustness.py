"""Robustness of mappings to ETC estimation error.

The ETC values driving every heuristic are *estimates* ("the assumption
of such ETC information is a common practice", paper Section 2), and
the authors' companion work (Ali, Shestak, Smith et al. — the
robustness papers filling the source text's bibliography) asks how a
mapping behaves when actual execution times deviate from the estimates.
This module provides that analysis for any mapping produced here:

* :func:`perturbed_finish_times` — realised per-machine finishing times
  when actual times are ``ETC * (1 + error)`` with multiplicative noise;
* :func:`robustness_radius` — the largest uniform relative error under
  which the realised makespan is guaranteed to stay within a tolerance
  of the estimated makespan (closed form for multiplicative noise);
* :func:`makespan_degradation` — Monte-Carlo distribution of realised
  makespan over an error model, per heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Mapping
from repro.exceptions import ConfigurationError

__all__ = [
    "perturbed_finish_times",
    "robustness_radius",
    "DegradationSummary",
    "makespan_degradation",
]


def _assignment_matrix(mapping: Mapping) -> np.ndarray:
    """Boolean (tasks x machines) incidence of a complete mapping."""
    etc = mapping.etc
    incidence = np.zeros(etc.shape, dtype=bool)
    for a in mapping.assignments:
        incidence[etc.task_index(a.task), etc.machine_index(a.machine)] = True
    return incidence


def perturbed_finish_times(
    mapping: Mapping,
    relative_errors: np.ndarray,
) -> np.ndarray:
    """Realised finishing times when task ``i`` actually takes
    ``ETC[i, m] * (1 + relative_errors[i])`` on its machine.

    ``relative_errors`` must be > -1 (times stay positive).  Queueing
    order within a machine does not change its finishing time, so the
    result is exact, not an approximation.
    """
    etc = mapping.etc
    errors = np.asarray(relative_errors, dtype=np.float64)
    if errors.shape != (etc.num_tasks,):
        raise ConfigurationError(
            f"need one relative error per task, got shape {errors.shape}"
        )
    if np.any(errors <= -1.0):
        raise ConfigurationError("relative errors must be > -1")
    incidence = _assignment_matrix(mapping)
    actual = etc.values * (1.0 + errors)[:, None]
    loads = (actual * incidence).sum(axis=0)
    return mapping.initial_ready_times() + loads


def robustness_radius(
    mapping: Mapping,
    tolerance: float = 1.2,
    bound: float | None = None,
) -> float:
    """Largest uniform relative error ``r`` such that for *any* error
    vector with ``|e_i| <= r`` the realised makespan stays within the
    bound.

    The bound is ``tolerance * estimated_makespan`` by default, or an
    explicit absolute ``bound`` (e.g. a shared deadline — use this to
    compare the robustness of *different* mappings of one instance:
    relative to its own makespan every zero-ready mapping trivially has
    radius ``tolerance - 1``, but against a common deadline balanced
    mappings have more headroom).

    For multiplicative noise the worst case inflates every task on a
    machine by ``r``, so the radius solves
    ``ready_j + (1 + r) * load_j <= bound`` over all machines ``j`` — a
    closed form, no sampling needed.  The result can be negative when
    the mapping already violates the bound.
    """
    if not mapping.is_complete():
        raise ConfigurationError("robustness radius needs a complete mapping")
    if bound is None:
        if tolerance <= 1.0:
            raise ConfigurationError(f"tolerance must exceed 1, got {tolerance}")
        bound = tolerance * mapping.makespan()
    elif bound <= 0:
        raise ConfigurationError(f"bound must be positive, got {bound}")
    ready = mapping.initial_ready_times()
    loads = mapping.finish_time_vector() - ready
    radii = []
    for j in range(loads.size):
        if loads[j] <= 0:
            continue  # idle machines never violate the bound
        radii.append((bound - ready[j]) / loads[j] - 1.0)
    if not radii:
        return np.inf
    return float(min(radii))


@dataclass(frozen=True)
class DegradationSummary:
    """Monte-Carlo makespan degradation of one mapping."""

    estimated_makespan: float
    mean_realised: float
    worst_realised: float
    violation_rate: float  # fraction of samples beyond tolerance
    tolerance: float

    @property
    def mean_degradation(self) -> float:
        """Mean realised / estimated makespan."""
        return self.mean_realised / self.estimated_makespan


def makespan_degradation(
    mapping: Mapping,
    error_cv: float = 0.1,
    samples: int = 200,
    tolerance: float = 1.2,
    rng: np.random.Generator | int | None = None,
) -> DegradationSummary:
    """Sample realised makespans under lognormal multiplicative noise.

    Per-task factors are lognormal with median 1 and coefficient of
    variation ``error_cv`` (the Ali et al. error model); the summary
    reports the mean/worst realised makespan and how often the
    ``tolerance``-bound on the estimated makespan is violated.
    """
    if error_cv <= 0:
        raise ConfigurationError(f"error_cv must be positive, got {error_cv}")
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    sigma = np.sqrt(np.log(1.0 + error_cv**2))
    estimated = mapping.makespan()
    realised = np.empty(samples)
    for k in range(samples):
        factors = gen.lognormal(mean=0.0, sigma=sigma, size=mapping.etc.num_tasks)
        finish = perturbed_finish_times(mapping, factors - 1.0)
        realised[k] = finish.max()
    return DegradationSummary(
        estimated_makespan=estimated,
        mean_realised=float(realised.mean()),
        worst_realised=float(realised.max()),
        violation_rate=float((realised > tolerance * estimated).mean()),
        tolerance=tolerance,
    )

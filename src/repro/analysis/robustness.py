"""Robustness of mappings to ETC estimation error.

The ETC values driving every heuristic are *estimates* ("the assumption
of such ETC information is a common practice", paper Section 2), and
the authors' companion work (Ali, Shestak, Smith et al. — the
robustness papers filling the source text's bibliography) asks how a
mapping behaves when actual execution times deviate from the estimates.
This module provides that analysis for any mapping produced here:

* :func:`perturbed_finish_times` — realised per-machine finishing times
  when actual times are ``ETC * (1 + error)`` with multiplicative noise;
* :func:`robustness_radius` — the largest uniform relative error under
  which the realised makespan is guaranteed to stay within a tolerance
  of the estimated makespan (closed form for multiplicative noise);
* :func:`makespan_degradation` — Monte-Carlo distribution of realised
  makespan over an error model, per heuristic;
* :func:`fault_degradation_study` — the *dynamic* robustness question:
  how do the original and the iterative mappings degrade when machines
  actually fail and recover mid-run (seeded
  :mod:`repro.sim.faults` plans executed by
  :class:`~repro.sim.hcsystem.FaultTolerantHCSystem`), measured on both
  makespan and non-makespan completion times across fault rates.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.schedule import Mapping
from repro.exceptions import ConfigurationError

__all__ = [
    "perturbed_finish_times",
    "robustness_radius",
    "DegradationSummary",
    "makespan_degradation",
    "FaultStudyRow",
    "fault_degradation_study",
    "format_fault_table",
    "non_makespan_mean",
]


def _assignment_matrix(mapping: Mapping) -> np.ndarray:
    """Boolean (tasks x machines) incidence of a complete mapping."""
    etc = mapping.etc
    incidence = np.zeros(etc.shape, dtype=bool)
    for a in mapping.assignments:
        incidence[etc.task_index(a.task), etc.machine_index(a.machine)] = True
    return incidence


def perturbed_finish_times(
    mapping: Mapping,
    relative_errors: np.ndarray,
) -> np.ndarray:
    """Realised finishing times when task ``i`` actually takes
    ``ETC[i, m] * (1 + relative_errors[i])`` on its machine.

    ``relative_errors`` must be > -1 (times stay positive).  Queueing
    order within a machine does not change its finishing time, so the
    result is exact, not an approximation.
    """
    etc = mapping.etc
    errors = np.asarray(relative_errors, dtype=np.float64)
    if errors.shape != (etc.num_tasks,):
        raise ConfigurationError(
            f"need one relative error per task, got shape {errors.shape}"
        )
    if np.any(errors <= -1.0):
        raise ConfigurationError("relative errors must be > -1")
    incidence = _assignment_matrix(mapping)
    actual = etc.values * (1.0 + errors)[:, None]
    loads = (actual * incidence).sum(axis=0)
    return mapping.initial_ready_times() + loads


def robustness_radius(
    mapping: Mapping,
    tolerance: float = 1.2,
    bound: float | None = None,
) -> float:
    """Largest uniform relative error ``r`` such that for *any* error
    vector with ``|e_i| <= r`` the realised makespan stays within the
    bound.

    The bound is ``tolerance * estimated_makespan`` by default, or an
    explicit absolute ``bound`` (e.g. a shared deadline — use this to
    compare the robustness of *different* mappings of one instance:
    relative to its own makespan every zero-ready mapping trivially has
    radius ``tolerance - 1``, but against a common deadline balanced
    mappings have more headroom).

    For multiplicative noise the worst case inflates every task on a
    machine by ``r``, so the radius solves
    ``ready_j + (1 + r) * load_j <= bound`` over all machines ``j`` — a
    closed form, no sampling needed.  The result can be negative when
    the mapping already violates the bound.
    """
    if not mapping.is_complete():
        raise ConfigurationError("robustness radius needs a complete mapping")
    if bound is None:
        if tolerance <= 1.0:
            raise ConfigurationError(f"tolerance must exceed 1, got {tolerance}")
        bound = tolerance * mapping.makespan()
    elif bound <= 0:
        raise ConfigurationError(f"bound must be positive, got {bound}")
    ready = mapping.initial_ready_times()
    loads = mapping.finish_time_vector() - ready
    radii = []
    for j in range(loads.size):
        if loads[j] <= 0:
            continue  # idle machines never violate the bound
        radii.append((bound - ready[j]) / loads[j] - 1.0)
    if not radii:
        return np.inf
    return float(min(radii))


@dataclass(frozen=True)
class DegradationSummary:
    """Monte-Carlo makespan degradation of one mapping."""

    estimated_makespan: float
    mean_realised: float
    worst_realised: float
    violation_rate: float  # fraction of samples beyond tolerance
    tolerance: float

    @property
    def mean_degradation(self) -> float:
        """Mean realised / estimated makespan."""
        return self.mean_realised / self.estimated_makespan


def makespan_degradation(
    mapping: Mapping,
    error_cv: float = 0.1,
    samples: int = 200,
    tolerance: float = 1.2,
    rng: np.random.Generator | int | None = None,
) -> DegradationSummary:
    """Sample realised makespans under lognormal multiplicative noise.

    Per-task factors are lognormal with median 1 and coefficient of
    variation ``error_cv`` (the Ali et al. error model); the summary
    reports the mean/worst realised makespan and how often the
    ``tolerance``-bound on the estimated makespan is violated.
    """
    if error_cv <= 0:
        raise ConfigurationError(f"error_cv must be positive, got {error_cv}")
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    sigma = np.sqrt(np.log(1.0 + error_cv**2))
    estimated = mapping.makespan()
    realised = np.empty(samples)
    for k in range(samples):
        factors = gen.lognormal(mean=0.0, sigma=sigma, size=mapping.etc.num_tasks)
        finish = perturbed_finish_times(mapping, factors - 1.0)
        realised[k] = finish.max()
    return DegradationSummary(
        estimated_makespan=estimated,
        mean_realised=float(realised.mean()),
        worst_realised=float(realised.max()),
        violation_rate=float((realised > tolerance * estimated).mean()),
        tolerance=tolerance,
    )


# ----------------------------------------------------------------------
# Fault-injection degradation study (original vs iterative mappings)
# ----------------------------------------------------------------------
def non_makespan_mean(finish_times: dict[str, float]) -> float:
    """Mean finishing time over the non-makespan machines.

    Drops exactly one machine — the latest-finishing one — mirroring the
    paper's object of study (the availability of everything *except* the
    makespan machine).  A one-machine system has no non-makespan
    machines; its own finish time is returned.
    """
    values = sorted(finish_times.values())
    if len(values) <= 1:
        return float(values[0])
    return float(np.mean(values[:-1]))


@dataclass(frozen=True)
class FaultStudyRow:
    """Aggregate degradation of one (mapping kind, failure rate) cell.

    Degradations are per-instance ratios ``realised / fault-free``
    averaged over instances (1.0 = unharmed); counters are totals.
    """

    heuristic: str
    mapping_kind: str  # "original" | "iterative"
    failure_rate: float
    instances: int
    fault_free_makespan: float
    mean_makespan: float
    makespan_degradation: float
    fault_free_non_makespan: float
    mean_non_makespan: float
    non_makespan_degradation: float
    failures: int
    retries: int
    requeues: int
    dropped: int


def fault_degradation_study(
    heuristic: str = "min-min",
    *,
    failure_rates: Sequence[float] = (1e-6, 3e-6, 1e-5),
    num_tasks: int = 40,
    num_machines: int = 8,
    instances: int = 5,
    policy: str = "requeue",
    retry_budget: int = 8,
    downtime_frac: float = 0.05,
    slowdown_rate: float = 0.0,
    slowdown_factor: float = 2.0,
    heterogeneity=None,
    consistency=None,
    seed: int = 0,
) -> list[FaultStudyRow]:
    """Degradation of original vs iterative mappings under rising faults.

    For every instance the study builds the heuristic's *original*
    mapping and the iterative technique's composite *final* mapping
    (:meth:`~repro.core.iterative.IterativeResult.final_mapping`), then
    executes **both under the identical seeded fault plan** at each
    failure rate — a paired design, so the original-vs-iterative deltas
    are not noise from different fault draws.  The fault horizon is the
    instance's fault-free original makespan and ``mean_downtime`` is
    ``downtime_frac`` of it, which keeps rate sweeps comparable across
    ETC magnitudes.  Everything is derived from ``seed``: the same call
    always returns the identical rows.
    """
    from repro.analysis.experiments import stable_key
    from repro.core.iterative import IterativeScheduler
    from repro.etc.generation import (
        Consistency,
        Heterogeneity,
        generate_range_based,
    )
    from repro.heuristics.base import get_heuristic
    from repro.sim.faults import FaultConfig, generate_fault_plan
    from repro.sim.hcsystem import FaultTolerantHCSystem

    if instances < 1:
        raise ConfigurationError(f"instances must be >= 1, got {instances}")
    if not failure_rates:
        raise ConfigurationError("need at least one failure rate")
    if any(rate <= 0 for rate in failure_rates):
        raise ConfigurationError("failure rates must be positive")
    if not 0 < downtime_frac:
        raise ConfigurationError(
            f"downtime_frac must be positive, got {downtime_frac}"
        )
    heterogeneity = heterogeneity or Heterogeneity.HIHI
    consistency = consistency or Consistency.INCONSISTENT

    heur = get_heuristic(heuristic)
    root = np.random.SeedSequence(seed)

    # One shared instance set across rates (paired in both directions).
    cases = []
    for idx in range(instances):
        etc_seed = np.random.SeedSequence(
            entropy=root.entropy, spawn_key=(stable_key("etc", str(idx)),)
        )
        etc = generate_range_based(
            num_tasks,
            num_machines,
            heterogeneity,
            consistency,
            rng=np.random.default_rng(etc_seed),
        )
        original = heur.map_tasks(etc)
        iterative = IterativeScheduler(get_heuristic(heuristic)).run(etc)
        cases.append((etc, {"original": original, "iterative": iterative.final_mapping()}))

    rows: list[FaultStudyRow] = []
    for rate in failure_rates:
        acc = {
            kind: {
                "base_mk": [], "real_mk": [], "mk_ratio": [],
                "base_nm": [], "real_nm": [], "nm_ratio": [],
                "failures": 0, "retries": 0, "requeues": 0, "dropped": 0,
            }
            for kind in ("original", "iterative")
        }
        for idx, (etc, mappings) in enumerate(cases):
            horizon = mappings["original"].makespan()
            mean_downtime = downtime_frac * horizon
            config = FaultConfig(
                failure_rate=rate,
                mean_downtime=mean_downtime,
                slowdown_rate=slowdown_rate,
                slowdown_factor=slowdown_factor,
                mean_slowdown=mean_downtime if slowdown_rate > 0 else 0.0,
            )
            plan_seed = np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(stable_key("plan", f"{rate!r}", str(idx)),),
            )
            plan = generate_fault_plan(
                etc.machines, config, horizon, rng=np.random.default_rng(plan_seed)
            )
            for kind, mapping in mappings.items():
                baseline = mapping.machine_finish_times()
                system = FaultTolerantHCSystem(
                    etc,
                    plan,
                    policy=policy,
                    retry_budget=retry_budget,
                    backoff_base=max(0.25 * mean_downtime, 1e-9),
                    backoff_cap=4.0 * mean_downtime,
                )
                outcome = system.execute(mapping)
                realised = outcome.finish_times()
                bucket = acc[kind]
                base_mk, real_mk = max(baseline.values()), max(realised.values())
                base_nm = non_makespan_mean(baseline)
                real_nm = non_makespan_mean(realised)
                bucket["base_mk"].append(base_mk)
                bucket["real_mk"].append(real_mk)
                bucket["mk_ratio"].append(real_mk / base_mk)
                bucket["base_nm"].append(base_nm)
                bucket["real_nm"].append(real_nm)
                bucket["nm_ratio"].append(real_nm / base_nm)
                bucket["failures"] += outcome.failures
                bucket["retries"] += outcome.retries
                bucket["requeues"] += outcome.requeues
                bucket["dropped"] += len(outcome.dropped)
        for kind in ("original", "iterative"):
            bucket = acc[kind]
            rows.append(
                FaultStudyRow(
                    heuristic=heuristic,
                    mapping_kind=kind,
                    failure_rate=float(rate),
                    instances=instances,
                    fault_free_makespan=float(np.mean(bucket["base_mk"])),
                    mean_makespan=float(np.mean(bucket["real_mk"])),
                    makespan_degradation=float(np.mean(bucket["mk_ratio"])),
                    fault_free_non_makespan=float(np.mean(bucket["base_nm"])),
                    mean_non_makespan=float(np.mean(bucket["real_nm"])),
                    non_makespan_degradation=float(np.mean(bucket["nm_ratio"])),
                    failures=bucket["failures"],
                    retries=bucket["retries"],
                    requeues=bucket["requeues"],
                    dropped=bucket["dropped"],
                )
            )
    return rows


def format_fault_table(rows: Sequence[FaultStudyRow]) -> str:
    """Fixed-width report grouped by failure rate."""
    lines = []
    for rate in sorted({r.failure_rate for r in rows}):
        sel = [r for r in rows if r.failure_rate == rate]
        lines.append(f"failure rate {rate:g} /machine/time-unit:")
        lines.append(
            f"  {'mapping':<22}{'makespan':>12}{'degrade':>9}"
            f"{'non-mk mean':>13}{'degrade':>9}"
            f"{'fail':>6}{'retry':>7}{'drop':>6}"
        )
        for r in sel:
            lines.append(
                f"  {r.heuristic + '/' + r.mapping_kind:<22}"
                f"{r.mean_makespan:>12,.0f}"
                f"{r.makespan_degradation:>9.3f}"
                f"{r.mean_non_makespan:>13,.0f}"
                f"{r.non_makespan_degradation:>9.3f}"
                f"{r.failures:>6}{r.retries:>7}{r.dropped:>6}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()

"""Sharded, resumable experiment execution with on-disk result caching.

The one-shot pool in :mod:`repro.analysis.parallel` recomputes every
(heterogeneity, consistency) cell on every invocation and loses all
completed work when a run is interrupted.  This module replaces that
engine while keeping :func:`repro.analysis.parallel.run_experiment_parallel`
as a thin compatible wrapper:

* **Content-addressed cells.**  Every cell sub-config is hashed with
  the run ledger's :func:`~repro.obs.ledger.config_hash` scheme
  (SHA-256 over the canonical JSON of the ETC-instance seed, heuristic
  configuration and iterative parameters), so a cell's cache key is
  stable across processes, machines and grid shapes — the same cell in
  a bigger grid hits the same cache entry.
* **Persist-as-you-go.**  Completed cell results are written to an
  on-disk cache (default ``.repro/cells/``) the moment they finish,
  atomically (write-temp + rename), so a killed or crashed run leaves
  only whole cell entries behind.  Re-running with ``resume=True``
  serves those cells from cache and computes only the remainder;
  cached records are byte-identical to recomputed ones (asserted by
  the integration suite).
* **Work-stealing shard queue.**  The uncached cells are partitioned
  round-robin into shards (:func:`split_into_shards`) and submitted
  shard-interleaved to the process pool, whose shared queue lets idle
  workers steal the next cell — heterogeneous cell costs cannot strand
  a worker on a long tail.
* **Timeouts and quarantine.**  A per-cell wall-clock timeout (pooled
  mode) and bounded retries turn a pathological cell into a *poisoned*
  cell — recorded in the cache as ``<key>.poison.json`` and skipped on
  resume — instead of hanging the whole grid.
* **Zero-copy store transport.**  With ``store_dir`` set, cell inputs
  flow through a memory-mapped :class:`~repro.etc.store.ETCStore`
  instead of being regenerated (or pickled) per worker: the parent
  *publishes* each pending cell's instance stack once — streamed in
  bounded windows via
  :func:`~repro.etc.generation.generate_ensemble_into`, so grid size is
  limited by disk, not RAM — and the pool ships only tiny
  ``(cell config, store root)`` descriptors.  Persistent workers attach
  the store once (module-level handle cache) and read every instance as
  a read-only ``numpy.memmap`` view through the trusted zero-copy
  constructors.  Entries are content-addressed with the cell cache's
  SHA-256 scheme over the *instance-generation* parameters alone
  (:func:`store_entry_key`), so published stacks are reused across
  resumes and by any grid sharing the ETC class — even when heuristics
  differ.  Records, cache entries and traced cell
  snapshots are byte-identical to the in-memory path (transport-only
  ``store.*`` / ``runner.ipc.*`` parent-side counters excepted) —
  asserted by the transport test battery.
* **Observability.**  The runner counts ``runner.cells.cached`` /
  ``runner.cells.computed`` / ``runner.cells.retried`` /
  ``runner.cells.quarantined`` and fills the ``runner.cell_wall_s``
  histogram on the caller's tracer; per-cell worker snapshots merge in
  cell order exactly like the old engine, so traced grid runs stay
  deterministic.  Cached cells store their worker snapshot in the
  cache (JSONL-export schema), so a resumed run under a tracer merges
  the same per-cell event streams a fresh run would produce (modulo
  JSON's tuple/list conflation in event fields — the documented export
  round-trip contract).
* **Span timelines and time-series.**  In cache mode the whole run
  executes under one ``runner.grid`` span whose
  :class:`~repro.obs.spans.SpanContext` rides to every worker in the
  submission payload, so the merged snapshots form a single trace tree
  (publish → worker attach → cell compute → persist) renderable with
  ``repro obs timeline``; ``timeseries=`` streams a
  ``repro-timeseries/1`` JSONL of throughput, cache-hit and queue-depth
  samples (:mod:`repro.obs.timeseries`) while the run progresses.

Typical use::

    from repro.analysis.runner import run_grid

    result = run_grid(config, cache_dir=".repro/cells", resume=True)
    result.records          # one RunRecord per (heuristic, instance), grid order
    result.cached_cells     # how many cells were served from cache

The ``repro run-grid`` CLI subcommand wraps this engine end to end.
"""

from __future__ import annotations

import functools
import json
import os
import pickle
import tempfile
import time
from collections.abc import Callable
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.analysis.experiments import (
    ExperimentConfig,
    RunRecord,
    cell_instance_rng,
    config_to_dict,
    run_experiment,
    run_record_from_dict,
    run_record_to_dict,
)
from repro.analysis.parallel import split_into_cells
from repro.etc.generation import DEFAULT_STREAM_WINDOW, generate_ensemble_into
from repro.etc.store import ETCStore
from repro.exceptions import ConfigurationError, ReproError
from repro.obs.metrics import BYTE_BUCKETS, TIME_BUCKETS
from repro.obs.progress import NULL_PROGRESS
from repro.obs.spans import SpanContext
from repro.obs.timeseries import GridSampler
from repro.obs.tracer import (
    CollectingTracer,
    ObsSnapshot,
    get_tracer,
    use_tracer,
)

__all__ = [
    "CELL_SCHEMA",
    "POISON_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "cell_key",
    "cell_label",
    "store_entry_key",
    "split_into_shards",
    "pack_same_shape_batches",
    "CellCache",
    "CellTimeoutError",
    "QuarantinedCell",
    "GridResult",
    "run_grid",
]

#: Cache entry format identifier; bump when the JSON layout changes.
CELL_SCHEMA = "repro-cell/1"

#: Poison marker format identifier.
POISON_SCHEMA = "repro-cell-poison/1"

#: Default cell cache location, next to the run ledger under ``.repro/``.
DEFAULT_CACHE_DIR = ".repro/cells"

#: Default bounded-retry budget per cell before it is quarantined.
DEFAULT_RETRIES = 1


class CellTimeoutError(ReproError):
    """A cell exceeded its per-cell wall-clock timeout."""


def cell_key(config: ExperimentConfig) -> str:
    """Content address of one cell: the ledger's SHA-256 config hash.

    The hash covers everything that determines the cell's records —
    the ETC-instance seed, grid shape, heuristic configuration and
    iterative parameters — and nothing that does not (worker counts,
    shard counts, cache paths), so re-running the same science always
    hits the same entry.
    """
    from repro.obs.ledger import config_hash

    return config_hash(config_to_dict(config))


def cell_label(config: ExperimentConfig) -> str:
    """Human label ``het/cons`` of a single-cell sub-config."""
    return (
        f"{config.heterogeneities[0].value}/{config.consistencies[0].value}"
        if config.heterogeneities and config.consistencies
        else "?"
    )


def store_entry_key(config: ExperimentConfig, het, cons) -> str:
    """Content address of one cell's instance ensemble in the ETC store.

    Hashes only what determines the generated instances — seed, matrix
    shape, instance count, generation method and the ETC class — with
    the same SHA-256 scheme as :func:`cell_key`.  Heuristic
    configuration is deliberately excluded: grids that differ only in
    heuristics or iterative parameters share published instance stacks.
    """
    from repro.obs.ledger import config_hash

    return config_hash(
        {
            "kind": "etc-ensemble/1",
            "seed": config.seed,
            "num_tasks": config.num_tasks,
            "num_machines": config.num_machines,
            "count": config.instances_per_cell,
            "method": config.generation_method,
            "heterogeneity": het.value,
            "consistency": cons.value,
        }
    )


#: Worker-side store handle cache: root path -> attached read-only
#: :class:`~repro.etc.store.ETCStore`.  Persistent pool workers (and the
#: serial in-process path) attach each store at most once, however many
#: cells read from it.
_WORKER_STORES: dict[str, ETCStore] = {}


def _attached_store(root: str) -> ETCStore:
    store = _WORKER_STORES.get(root)
    if store is None:
        store = ETCStore(root, create=False)
        _WORKER_STORES[root] = store
    return store


def _detach_stores(root: str | None = None) -> None:
    """Close cached store attachments (one root, or all with ``None``).

    Releases the mmap windows held by this process; safe for roots that
    were never attached.  The parent calls this in ``run_grid``'s
    cleanup path so serial store-backed runs pin no mappings afterwards.
    """
    roots = [root] if root is not None else list(_WORKER_STORES)
    for key in roots:
        store = _WORKER_STORES.pop(key, None)
        if store is not None:
            store.close()


def _run_cell_from_store(
    config: ExperimentConfig, store_root: str
) -> list[RunRecord]:
    """Worker entry point of the store transport (module-level picklable).

    Attaches the store once per process (:data:`_WORKER_STORES`) and
    serves the cell's instances as read-only memmap views through
    ``run_experiment(instances_for=...)`` — nothing larger than the cell
    config and the store root ever crosses the process boundary.
    """
    tracer = get_tracer()
    with tracer.phase("store.attach"):
        store = _attached_store(store_root)

    def instances_for(het, cons):
        key = store_entry_key(config, het, cons)
        with tracer.phase("store.read", entry=key[:12]):
            if key not in store:
                # Published after this handle last read the manifest
                # (persistent worker or serial in-process reuse).
                store.reload()
            return store.instances(key)

    return run_experiment(config, instances_for=instances_for)


def split_into_shards(cells: list, num_shards: int) -> list[list]:
    """Round-robin partition of ``cells`` into at most ``num_shards``
    shards.

    Adjacent grid cells often share costs (same heterogeneity class),
    so the round-robin stride spreads expensive neighbourhoods across
    shards.  Never returns empty shards: with ``num_shards >
    len(cells)`` every shard is a singleton, and an empty grid yields
    no shards at all.
    """
    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    effective = min(num_shards, len(cells))
    return [cells[i::effective] for i in range(effective)]


def _cell_shape(cell) -> tuple[int, int]:
    return (cell.num_tasks, cell.num_machines)


def pack_same_shape_batches(cells: list, batch_size: int, *, key=None) -> list[list]:
    """Group ``cells`` by ETC shape and chunk each group into batches.

    Cells whose ``(num_tasks, num_machines)`` match are packed, in grid
    order, into lists of at most ``batch_size``; remainder batches stay
    partial rather than mixing shapes (batched kernels require a
    homogeneous stack).  Groups come back in order of first appearance,
    so a homogeneous grid round-trips to plain chunking.  ``key``
    overrides the shape extractor for callers whose items wrap the
    config (the runner passes a ``_CellWork``-aware one).
    """
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if key is None:
        key = _cell_shape
    groups: dict = {}
    for cell in cells:
        groups.setdefault(key(cell), []).append(cell)
    batches: list[list] = []
    for group in groups.values():
        for start in range(0, len(group), batch_size):
            batches.append(group[start : start + batch_size])
    return batches


# ----------------------------------------------------------------------
# On-disk cell cache
# ----------------------------------------------------------------------
def _snapshot_to_records(snapshot: ObsSnapshot) -> list[dict]:
    """Snapshot → parsed JSONL-export records (the cacheable form)."""
    from repro.obs.export import snapshot_to_jsonl

    return [
        json.loads(line)
        for line in snapshot_to_jsonl(snapshot).splitlines()
        if line
    ]


def _records_to_snapshot(records: list[dict]) -> ObsSnapshot:
    from repro.obs.export import records_to_snapshot

    return records_to_snapshot(records)


@dataclass(frozen=True)
class CellEntry:
    """One deserialised cache hit."""

    key: str
    records: tuple[RunRecord, ...]
    snapshot: ObsSnapshot | None


class CellCache:
    """Content-addressed cell store under one directory.

    Entries are ``<key>.json`` (``repro-cell/1``); quarantined cells
    leave a ``<key>.poison.json`` marker instead.  All writes are
    atomic (temp file + ``os.replace``), so an interrupted run can
    never leave a torn entry for ``resume`` to trip over.
    """

    def __init__(self, root: str | Path = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def poison_path_for(self, key: str) -> Path:
        return self.root / f"{key}.poison.json"

    def _atomic_write(self, path: Path, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def store(
        self,
        key: str,
        config: ExperimentConfig,
        records: list[RunRecord],
        snapshot: ObsSnapshot | None,
    ) -> Path:
        """Persist one completed cell; returns the entry path.

        Spans are stripped from the persisted snapshot: they carry
        wall-clock values and run-local trace ids, and cache entries
        must stay byte-identical across runs (the transport suite
        compares entry files from independent invocations).  A resumed
        run re-roots cached cells with a synthetic
        ``runner.cell.cached`` span instead.
        """
        if snapshot is not None and snapshot.spans:
            snapshot = replace(snapshot, spans=())
        payload = {
            "schema": CELL_SCHEMA,
            "key": key,
            "config": config_to_dict(config),
            "records": [run_record_to_dict(r) for r in records],
            "obs": _snapshot_to_records(snapshot) if snapshot is not None else None,
        }
        path = self.path_for(key)
        self._atomic_write(path, payload)
        return path

    def load(self, key: str, *, need_obs: bool = False) -> CellEntry | None:
        """The cached entry for ``key``, or ``None`` on a miss.

        ``need_obs=True`` (a tracer is installed) additionally treats
        entries cached from an *untraced* run as misses, since they
        cannot replay the cell's event stream.
        """
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            raise ConfigurationError(
                f"unreadable cell cache entry {path} ({exc}); delete it to recompute"
            ) from None
        if payload.get("schema") != CELL_SCHEMA or payload.get("key") != key:
            raise ConfigurationError(
                f"{path}: not a {CELL_SCHEMA} entry for key {key[:12]}…; "
                "delete it to recompute"
            )
        obs = payload.get("obs")
        if need_obs and obs is None:
            return None
        return CellEntry(
            key=key,
            records=tuple(run_record_from_dict(d) for d in payload["records"]),
            snapshot=_records_to_snapshot(obs) if obs is not None else None,
        )

    def poison(self, key: str, config: ExperimentConfig, error: str, attempts: int) -> Path:
        """Mark a cell quarantined so ``resume`` skips it."""
        path = self.poison_path_for(key)
        self._atomic_write(
            path,
            {
                "schema": POISON_SCHEMA,
                "key": key,
                "config": config_to_dict(config),
                "error": error,
                "attempts": attempts,
            },
        )
        return path

    def is_poisoned(self, key: str) -> bool:
        return self.poison_path_for(key).is_file()

    def clear_poison(self, key: str) -> None:
        try:
            self.poison_path_for(key).unlink()
        except FileNotFoundError:
            pass

    def keys(self) -> list[str]:
        """All cached (non-poison) cell keys, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.stem
            for p in self.root.glob("*.json")
            if not p.name.endswith(".poison.json")
        )

    def __repr__(self) -> str:
        return f"CellCache({str(self.root)!r})"


# ----------------------------------------------------------------------
# The grid engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuarantinedCell:
    """One cell the grid gave up on (timeout or repeated failure)."""

    label: str
    key: str
    error: str
    attempts: int


@dataclass(frozen=True)
class GridResult:
    """Outcome of one :func:`run_grid` invocation."""

    records: tuple[RunRecord, ...]
    total_cells: int
    cached_cells: int
    computed_cells: int
    retried: int
    quarantined: tuple[QuarantinedCell, ...] = ()
    #: Store transport bookkeeping (``store_dir`` runs only): ensembles
    #: streamed into the store this run vs served from existing entries.
    store_published: int = 0
    store_reused: int = 0
    #: Headline numbers of the time-series sampler (``timeseries``
    #: runs only): tasks_scheduled, tasks_per_s, cells_per_s, …
    timeseries_summary: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.quarantined


def _compute_cell(
    cell_fn: Callable[[ExperimentConfig], list[RunRecord]],
    config: ExperimentConfig,
    observed: bool,
    context: SpanContext | None = None,
) -> tuple[list[RunRecord], ObsSnapshot | None]:
    """Run one cell, optionally under a fresh isolated collector.

    This is the worker entry point (must stay module-level picklable);
    the serial cached path reuses it in-process so cache entries carry
    the same isolated snapshots either way.  ``context`` is the parent
    run's :class:`~repro.obs.spans.SpanContext` (cached mode only): the
    isolated collector adopts its trace id, and the cell runs under one
    ``runner.cell`` phase span parented at the grid root, so merged
    worker spans join the parent's trace tree.
    """
    if observed:
        tracer = CollectingTracer(context=context)
        with use_tracer(tracer):
            if context is not None:
                with tracer.phase("runner.cell", cell=cell_label(config)):
                    records = cell_fn(config)
            else:
                records = cell_fn(config)
        return records, tracer.snapshot()
    return cell_fn(config), None


def _compute_cells(
    cell_fn: Callable[[ExperimentConfig], list[RunRecord]],
    configs: list[ExperimentConfig],
    observed: bool,
    context: SpanContext | None = None,
) -> list[tuple[list[RunRecord], ObsSnapshot | None, float]]:
    """Run a same-shape batch of cells in one worker round trip.

    Batched submission amortises pool dispatch and pickling overhead
    across the batch; each cell still gets its own isolated collector
    and wall-clock reading, so cache entries and the ``runner.cell_wall_s``
    histogram stay per-cell exactly as with singleton submissions.
    """
    out: list[tuple[list[RunRecord], ObsSnapshot | None, float]] = []
    for config in configs:
        started = time.perf_counter()
        records, snapshot = _compute_cell(cell_fn, config, observed, context)
        out.append((records, snapshot, time.perf_counter() - started))
    return out


@dataclass
class _CellWork:
    index: int
    config: ExperimentConfig
    key: str
    attempts: int = 0
    submitted_at: float = 0.0
    label: str = field(default="")

    def __post_init__(self) -> None:
        self.label = cell_label(self.config)


@dataclass
class _BatchWork:
    """One pool submission unit: a same-shape batch of pending cells."""

    works: list[_CellWork]
    attempts: int = 0
    submitted_at: float = 0.0

    @property
    def label(self) -> str:
        if len(self.works) == 1:
            return self.works[0].label
        return f"{self.works[0].label} ×{len(self.works)}"


def run_grid(
    config: ExperimentConfig,
    *,
    max_workers: int | None = None,
    progress=None,
    cache_dir: str | Path | None = None,
    resume: bool = False,
    shards: int | None = None,
    batch_size: int | None = None,
    timeout_s: float | None = None,
    retries: int = DEFAULT_RETRIES,
    on_error: str = "quarantine",
    store_dir: str | Path | None = None,
    stream_chunk: int | None = None,
    timeseries: str | Path | None = None,
    sample_interval_s: float = 0.5,
    cell_fn: Callable[[ExperimentConfig], list[RunRecord]] = run_experiment,
) -> GridResult:
    """Execute an experiment grid cell-by-cell, resumably.

    Records come back in grid (cell) order regardless of completion
    order, so the output is bit-identical to a serial
    :func:`~repro.analysis.experiments.run_experiment` run.

    ``cache_dir=None`` disables persistence entirely (the legacy
    one-shot behaviour); with a cache directory, every completed cell
    is persisted as it finishes and ``resume=True`` serves previously
    completed cells from cache.  ``shards`` controls the round-robin
    interleaving of the submission queue (default: one shard per
    cell).  ``batch_size`` packs same-shape uncached cells into
    multi-cell submission units (:func:`pack_same_shape_batches`) to
    amortise pool dispatch overhead — records, cache entries and
    traced output are identical to unbatched runs; only the
    submission granularity (and hence retry/timeout granularity)
    changes.  ``timeout_s`` bounds each submission attempt's wall clock in
    pooled mode (serial runs cannot be interrupted and ignore it).
    ``retries`` bounds re-attempts after a failure or timeout; what
    happens when the budget is exhausted depends on ``on_error``:

    * ``"quarantine"`` (default) — poison the cell (when a cache is
      configured), continue with the rest of the grid, and report it
      in :attr:`GridResult.quarantined`;
    * ``"raise"`` — re-raise the cell's original exception, matching
      the legacy ``run_experiment_parallel`` contract.

    ``store_dir`` switches cell inputs onto the zero-copy store
    transport (see the module docstring): pending cells' ensembles are
    streamed into the :class:`~repro.etc.store.ETCStore` at that path
    once, and workers attach them as memmap views instead of
    regenerating instances.  ``stream_chunk`` bounds the publish
    window (instances held in RAM at a time; default
    ``DEFAULT_STREAM_WINDOW``) and requires ``store_dir``.  Records and
    cache entries are byte-identical to non-store runs.

    ``timeseries`` names a ``repro-timeseries/1`` JSONL file to stream
    run metrics into (throughput, cache hit rate, RSS, pool queue
    depth — see :mod:`repro.obs.timeseries`); ``sample_interval_s``
    throttles the sampling cadence (0 samples on every update).  The
    sampler writes only to its file, never to the tracer.

    When the caller's tracer is a cache-mode collector, the whole grid
    additionally runs under one ``runner.grid`` span whose
    :class:`~repro.obs.spans.SpanContext` is shipped to every worker,
    so the merged snapshots form a single trace tree — worker spans
    carry the parent's trace id, cached cells re-root as synthetic
    ``runner.cell.cached`` spans, and the merged tree is deterministic
    in cell order (serial and sharded runs produce the same
    :func:`~repro.obs.spans.tree_shape`).

    ``cell_fn`` is the per-cell executor (tests inject failing or
    sleeping stand-ins; it must stay picklable for pooled runs).  It
    cannot be combined with ``store_dir``, whose executor is fixed.
    """
    if max_workers is not None and max_workers < 1:
        raise ConfigurationError(f"max_workers must be >= 1, got {max_workers}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(f"timeout_s must be > 0, got {timeout_s}")
    if on_error not in ("quarantine", "raise"):
        raise ConfigurationError(
            f"on_error must be 'quarantine' or 'raise', got {on_error!r}"
        )
    if batch_size is not None and batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
    if store_dir is not None and cell_fn is not run_experiment:
        raise ConfigurationError(
            "store_dir fixes the cell executor to the store transport; "
            "it cannot be combined with a custom cell_fn"
        )
    if stream_chunk is not None:
        if store_dir is None:
            raise ConfigurationError("stream_chunk requires store_dir")
        if stream_chunk < 1:
            raise ConfigurationError(
                f"stream_chunk must be >= 1, got {stream_chunk}"
            )

    progress = progress if progress is not None else NULL_PROGRESS
    tracer = get_tracer()
    cache = CellCache(cache_dir) if cache_dir is not None else None
    # The legacy wrapper (no cache) promises byte-identical traced
    # output vs a serial run, so runner.* counters/histograms are only
    # emitted when the cache-backed engine is in use.
    count_obs = tracer.enabled and cache is not None
    cells = split_into_cells(config)
    keys = [cell_key(cell) for cell in cells]

    if progress.enabled:
        progress.total = len(cells)

    sampler = (
        GridSampler(
            timeseries,
            total_cells=len(cells),
            tasks_per_record=config.num_tasks,
            label="run-grid",
            interval_s=sample_interval_s,
        )
        if timeseries is not None
        else None
    )

    results: dict[int, tuple[list[RunRecord], ObsSnapshot | None]] = {}
    quarantined: list[QuarantinedCell] = []
    cached_cells = 0
    cached_indices: set[int] = set()
    retried = 0

    def persist_and_record(
        work: _CellWork,
        records: list[RunRecord],
        snapshot: ObsSnapshot | None,
        wall_s: float,
    ) -> None:
        if cache is not None:
            cache.store(work.key, work.config, records, snapshot)
        results[work.index] = (records, snapshot)
        if count_obs:
            tracer.count("runner.cells.computed")
            tracer.observe("runner.cell_wall_s", wall_s, buckets=TIME_BUCKETS)
        if sampler is not None:
            sampler.note_cell(records=len(records))
        progress.advance(work.label)

    def give_up(work: _CellWork, exc: BaseException) -> None:
        if on_error == "raise":
            raise exc
        if cache is not None:
            cache.poison(work.key, work.config, repr(exc), work.attempts)
        quarantined.append(
            QuarantinedCell(
                label=work.label,
                key=work.key,
                error=repr(exc),
                attempts=work.attempts,
            )
        )
        if count_obs:
            tracer.count("runner.cells.quarantined")
        if sampler is not None:
            sampler.note_cell(quarantined=True)
        progress.advance(f"{work.label} (quarantined)")

    store: ETCStore | None = None
    store_published = 0
    store_reused = 0
    # One ``runner.grid`` span covers the whole run.  Cache mode only
    # (``count_obs``) so the legacy wrapper's traced output stays
    # byte-identical; ``phase`` spans never emit events, so the event
    # stream contract holds in cache mode too.  The span's context is
    # shipped to every worker so merged snapshots form one trace tree.
    grid_cm = (
        tracer.phase("runner.grid", cells=len(cells))
        if count_obs
        else nullcontext()
    )
    try:
        with grid_cm:
            ctx_fn = getattr(tracer, "context", None)
            grid_context = (
                ctx_fn() if count_obs and ctx_fn is not None else None
            )
            progress.start()

            # ----------------------------------------------------------
            # Phase 1: serve cached / skip poisoned cells.  Inside the
            # try so even a corrupt cache entry raising mid-scan still
            # flushes the progress line in the ``finally`` below.
            # ----------------------------------------------------------
            pending: list[_CellWork] = []
            for index, (cell, key) in enumerate(zip(cells, keys)):
                if cache is not None and resume:
                    if cache.is_poisoned(key):
                        quarantined.append(
                            QuarantinedCell(
                                label=cell_label(cell),
                                key=key,
                                error=(
                                    "previously quarantined "
                                    "(poison marker on disk)"
                                ),
                                attempts=0,
                            )
                        )
                        if count_obs:
                            tracer.count("runner.cells.quarantined")
                        if sampler is not None:
                            sampler.note_cell(quarantined=True)
                        progress.advance(f"{cell_label(cell)} (quarantined)")
                        continue
                    entry = cache.load(key, need_obs=tracer.enabled)
                    if entry is not None:
                        results[index] = (list(entry.records), entry.snapshot)
                        cached_cells += 1
                        cached_indices.add(index)
                        if count_obs:
                            tracer.count("runner.cells.cached")
                        if sampler is not None:
                            sampler.note_cell(
                                records=len(entry.records), cached=True
                            )
                        progress.advance(f"{cell_label(cell)} (cached)")
                        continue
                pending.append(_CellWork(index=index, config=cell, key=key))

            # ----------------------------------------------------------
            # Publish phase (store transport): stream each pending
            # cell's ensemble into the store exactly once, in bounded
            # windows; the pool then ships only (cell config, store
            # root) descriptors and workers attach the payload by
            # content key.  Inside the try so an interrupted publish
            # still releases the parent's store handle.
            # ----------------------------------------------------------
            if store_dir is not None:
                store = ETCStore(store_dir)
                # Transport-only parent-side counters: excluded from
                # the byte-identity contract (the legacy no-store
                # wrapper never emits them), so they are gated only on
                # the tracer.
                ipc_obs = tracer.enabled
                window = (
                    stream_chunk
                    if stream_chunk is not None
                    else DEFAULT_STREAM_WINDOW
                )
                publish_cm = (
                    tracer.phase("runner.publish", cells=len(pending))
                    if count_obs
                    else nullcontext()
                )
                with publish_cm:
                    for work in pending:
                        cell = work.config
                        het = cell.heterogeneities[0]
                        cons = cell.consistencies[0]
                        entry_key = store_entry_key(cell, het, cons)
                        reused = entry_key in store
                        entry = generate_ensemble_into(
                            store,
                            entry_key,
                            cell.instances_per_cell,
                            cell.num_tasks,
                            cell.num_machines,
                            heterogeneity=het,
                            consistency=cons,
                            method=cell.generation_method,
                            rng=cell_instance_rng(cell, het, cons),
                            window=window,
                        )
                        if reused:
                            store_reused += 1
                        else:
                            store_published += 1
                        if ipc_obs:
                            if reused:
                                tracer.count("store.cells_reused")
                            else:
                                tracer.count("store.cells_published")
                                tracer.count("store.bytes_written", entry.nbytes)
                            # Payload served zero-copy vs what actually
                            # crosses the pipe per cell — the transport
                            # win in bytes.
                            tracer.observe(
                                "runner.ipc.payload_bytes",
                                entry.nbytes,
                                buckets=BYTE_BUCKETS,
                            )
                            tracer.observe(
                                "runner.ipc.descriptor_bytes",
                                len(pickle.dumps((cell, str(store.root)))),
                                buckets=BYTE_BUCKETS,
                            )
                if sampler is not None:
                    sampler.note_store(
                        published=store_published, reused=store_reused
                    )
                cell_fn = functools.partial(
                    _run_cell_from_store, store_root=str(store.root)
                )

            # Pack pending cells into submission units.
            # ``batch_size=None`` keeps the historical
            # one-cell-per-submission behaviour exactly.
            if batch_size is None:
                units = [_BatchWork(works=[work]) for work in pending]
            else:
                units = [
                    _BatchWork(works=group)
                    for group in pack_same_shape_batches(
                        pending,
                        batch_size,
                        key=lambda work: _cell_shape(work.config),
                    )
                ]
                if count_obs:
                    for unit in units:
                        tracer.count("runner.batch.submitted")
                        tracer.observe("runner.batch.size", len(unit.works))
                        tracer.observe(
                            "runner.batch.fill_pct",
                            100.0 * len(unit.works) / batch_size,
                        )

            serial = len(pending) <= 1 or max_workers == 1
            if serial:
                pending = [work for unit in units for work in unit.works]
                # Isolate per-cell collection only when the cache needs
                # a snapshot to persist; otherwise run under the
                # caller's tracer directly, exactly like the legacy
                # serial path.
                isolate = cache is not None and tracer.enabled
                for work in pending:
                    while True:
                        started = time.perf_counter()
                        try:
                            if isolate:
                                records, snapshot = _compute_cell(
                                    cell_fn,
                                    work.config,
                                    observed=True,
                                    context=grid_context,
                                )
                            else:
                                records, snapshot = cell_fn(work.config), None
                        except Exception as exc:
                            work.attempts += 1
                            if work.attempts <= retries:
                                retried += 1
                                if count_obs:
                                    tracer.count("runner.cells.retried")
                                continue
                            give_up(work, exc)
                            break
                        persist_and_record(
                            work, records, snapshot, time.perf_counter() - started
                        )
                        break
            else:
                retried += _run_pooled(
                    units,
                    cell_fn=cell_fn,
                    max_workers=max_workers,
                    shards=shards,
                    timeout_s=timeout_s,
                    retries=retries,
                    observed=tracer.enabled,
                    persist_and_record=persist_and_record,
                    give_up=give_up,
                    tracer=tracer,
                    count_obs=count_obs,
                    context=grid_context,
                    sampler=sampler,
                )

            # Merge every isolated snapshot (cached or freshly
            # computed) in cell order, so the caller's traced stream is
            # independent of completion order and of the cache hit
            # pattern.  Still inside the grid span, so merged worker
            # spans re-attach under ``runner.grid``; cached cells
            # (their spans are stripped before persisting, keeping
            # entry files byte-stable) re-enter the tree as synthetic
            # ``runner.cell.cached`` spans.
            if tracer.enabled:
                for index in sorted(results):
                    if count_obs and index in cached_indices:
                        with tracer.phase(
                            "runner.cell.cached", cell=cell_label(cells[index])
                        ):
                            pass
                    snapshot = results[index][1]
                    if snapshot is not None:
                        tracer.merge_snapshot(snapshot)
    finally:
        progress.finish()
        if sampler is not None:
            sampler.close()
        # Release the parent's transport handles whatever happened
        # above: the publisher's memmaps/manifest handle, and (serial
        # in-process runs) the attached worker-side cache — so aborted
        # runs leave no open mappings and no stale store state behind.
        if store is not None:
            store.close()
            _detach_stores(str(store.root))

    records: list[RunRecord] = []
    for index in range(len(cells)):
        if index in results:
            records.extend(results[index][0])
    return GridResult(
        records=tuple(records),
        total_cells=len(cells),
        cached_cells=cached_cells,
        computed_cells=len(results) - cached_cells,
        retried=retried,
        quarantined=tuple(quarantined),
        store_published=store_published,
        store_reused=store_reused,
        timeseries_summary=sampler.summary() if sampler is not None else None,
    )


def _run_pooled(
    units: list[_BatchWork],
    *,
    cell_fn,
    max_workers: int | None,
    shards: int | None,
    timeout_s: float | None,
    retries: int,
    observed: bool,
    persist_and_record,
    give_up,
    tracer,
    count_obs: bool,
    context=None,
    sampler=None,
) -> int:
    """Drive the process pool: shard-interleaved submission, completion-
    order persistence, parent-side timeouts, bounded retries.

    The submission unit is a :class:`_BatchWork` — a singleton per cell
    by default, a same-shape batch of cells when the caller packed one.
    Retries and timeouts apply per unit (a failed batch re-runs whole).
    Returns the retry count.  Snapshots are *not* merged here — the
    caller merges every snapshot in cell order afterwards so traced
    output stays deterministic.  ``context`` is the parent's
    :class:`~repro.obs.spans.SpanContext`, forwarded verbatim to worker
    tracers; ``sampler`` (a :class:`~repro.obs.timeseries.GridSampler`)
    gets queue-depth updates as pool occupancy changes.
    """
    num_shards = shards if shards is not None else len(units)
    order = [unit for shard in split_into_shards(units, num_shards) for unit in shard]
    retried = 0
    abandoned_timeouts = False
    pool = ProcessPoolExecutor(max_workers=max_workers)
    try:
        in_flight: dict = {}

        def submit(unit: _BatchWork) -> None:
            unit.submitted_at = time.perf_counter()
            if len(unit.works) == 1:
                future = pool.submit(
                    _compute_cell, cell_fn, unit.works[0].config, observed, context
                )
            else:
                future = pool.submit(
                    _compute_cells,
                    cell_fn,
                    [work.config for work in unit.works],
                    observed,
                    context,
                )
            in_flight[future] = unit
            if sampler is not None:
                sampler.set_queue_depth(len(in_flight))

        def retry_or_give_up(unit: _BatchWork, exc: BaseException) -> int:
            unit.attempts += 1
            for work in unit.works:
                work.attempts = unit.attempts
            if unit.attempts <= retries:
                if count_obs:
                    tracer.count("runner.cells.retried")
                submit(unit)
                return 1
            for work in unit.works:
                give_up(work, exc)
            return 0

        for unit in order:
            submit(unit)

        while in_flight:
            tick = None
            if timeout_s is not None:
                tick = max(0.01, min(timeout_s / 4.0, 1.0))
            done, _ = wait(set(in_flight), timeout=tick, return_when=FIRST_COMPLETED)
            now = time.perf_counter()

            for future in done:
                unit = in_flight.pop(future)
                try:
                    outcome = future.result()
                except Exception as exc:
                    retried += retry_or_give_up(unit, exc)
                    continue
                if len(unit.works) == 1:
                    cell_records, snapshot = outcome
                    persist_and_record(
                        unit.works[0], cell_records, snapshot, now - unit.submitted_at
                    )
                else:
                    for work, (cell_records, snapshot, wall_s) in zip(
                        unit.works, outcome
                    ):
                        persist_and_record(work, cell_records, snapshot, wall_s)
            if done and sampler is not None:
                sampler.set_queue_depth(len(in_flight))

            if timeout_s is None:
                continue
            for future, unit in list(in_flight.items()):
                if now - unit.submitted_at <= timeout_s:
                    continue
                # A running cell cannot be cancelled; abandon the future
                # (its eventual result is discarded) and either retry on
                # a free worker or quarantine the cell.
                del in_flight[future]
                future.cancel()
                abandoned_timeouts = True
                error = CellTimeoutError(
                    f"cell {unit.label} exceeded the {timeout_s:g}s timeout "
                    f"(attempt {unit.attempts + 1})"
                )
                retried += retry_or_give_up(unit, error)
    finally:
        # Abandoned workers may still be crunching a timed-out cell;
        # don't block the parent on them.
        pool.shutdown(wait=not abandoned_timeouts, cancel_futures=True)
    return retried

"""The statistical studies behind the paper's qualitative findings.

The paper's evaluation is example-driven; its conclusions, however, are
population statements ("the greedy heuristics did not guarantee an
improvement", "MET, MCT and Min-Min were proven to not change over
successive iterations", "the Genitor-based approach will keep the same
mapping or produce a better mapping").  These studies measure exactly
those statements over synthetic ETC ensembles:

* :func:`improvement_study` — per heuristic × tie policy: how often the
  iterative technique changes the mapping, how often makespan
  increases, and how much the non-makespan machines' finishing times
  improve (experiment E23 in DESIGN.md);
* :func:`heuristic_comparison` — cross-heuristic makespan comparison on
  the standard ETC classes (experiment E24), anchoring our heuristic
  implementations against the well-known Braun et al. ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.experiments import (
    _STOCHASTIC,
    ExperimentConfig,
    RunRecord,
    run_experiment,
    stable_key,
)
from repro.analysis.stats import Summary, summarize
from repro.etc.generation import Consistency, Heterogeneity, generate_ensemble
from repro.exceptions import ConfigurationError
from repro.heuristics.base import get_heuristic

__all__ = [
    "ImprovementRow",
    "improvement_study",
    "format_improvement_table",
    "ComparisonRow",
    "heuristic_comparison",
    "format_comparison_table",
]


# ----------------------------------------------------------------------
# E23 — iterative improvement study
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ImprovementRow:
    """Aggregate outcome for one heuristic under one tie policy."""

    heuristic: str
    tie_policy: str
    runs: int
    mapping_change_rate: float
    makespan_increase_rate: float
    machine_improved_rate: float
    machine_worsened_rate: float
    mean_improvement: Summary

    def __str__(self) -> str:
        return (
            f"{self.heuristic:<20} {self.tie_policy:<13} "
            f"changed {100 * self.mapping_change_rate:5.1f}%  "
            f"ms-increase {100 * self.makespan_increase_rate:5.1f}%  "
            f"machines improved {100 * self.machine_improved_rate:5.1f}%"
        )


def _aggregate(records: list[RunRecord]) -> list[ImprovementRow]:
    rows: list[ImprovementRow] = []
    keys = sorted({(r.heuristic, r.tie_policy) for r in records})
    for heuristic, policy in keys:
        sel = [r for r in records if r.heuristic == heuristic and r.tie_policy == policy]
        comparisons = [r.comparison for r in sel]
        machine_deltas = [m.delta for c in comparisons for m in c.machines]
        improved = sum(1 for c in comparisons for m in c.machines if m.improved)
        worsened = sum(1 for c in comparisons for m in c.machines if m.worsened)
        total_machines = sum(len(c.machines) for c in comparisons)
        rows.append(
            ImprovementRow(
                heuristic=heuristic,
                tie_policy=policy,
                runs=len(sel),
                mapping_change_rate=float(
                    np.mean([c.mapping_changed for c in comparisons])
                ),
                makespan_increase_rate=float(
                    np.mean([c.makespan_increased for c in comparisons])
                ),
                machine_improved_rate=improved / total_machines,
                machine_worsened_rate=worsened / total_machines,
                mean_improvement=summarize(machine_deltas),
            )
        )
    return rows


def improvement_study(
    heuristics: tuple[str, ...] = ("min-min", "mct", "met", "sufferage",
                                   "k-percent-best", "switching-algorithm"),
    *,
    num_tasks: int = 40,
    num_machines: int = 8,
    instances: int = 30,
    heterogeneity: Heterogeneity = Heterogeneity.HIHI,
    consistency: Consistency = Consistency.INCONSISTENT,
    tie_policies: tuple[str, ...] = ("deterministic", "random"),
    seeded_iterations: bool = False,
    seed: int = 0,
    backend: str = "incremental",
    generation_method: str = "range",
    heuristic_kwargs=None,
    run_fn=run_experiment,
) -> list[ImprovementRow]:
    """Run E23: the per-heuristic iterative-improvement statistics.

    ``run_fn`` maps an :class:`ExperimentConfig` to its records; the
    default is the serial :func:`~repro.analysis.experiments.run_experiment`.
    The CLI routes this through the cached runner
    (:func:`~repro.analysis.runner.run_grid`) when ``--cache-dir`` /
    ``--resume`` are given — the records are identical either way, only
    execution and caching differ.  ``backend`` picks the kernel
    generation (see :mod:`repro.heuristics.backends`); all backends are
    decision-identical, so the rows do not depend on it.
    ``generation_method`` picks the ETC generator (``"range"`` /
    ``"cvb"``), matching ``ExperimentConfig.generation_method``.
    """
    rows: list[ImprovementRow] = []
    for policy in tie_policies:
        config = ExperimentConfig(
            heuristics=heuristics,
            num_tasks=num_tasks,
            num_machines=num_machines,
            heterogeneities=(heterogeneity,),
            consistencies=(consistency,),
            instances_per_cell=instances,
            tie_policy=policy,
            seeded_iterations=seeded_iterations,
            seed=seed,
            backend=backend,
            generation_method=generation_method,
            heuristic_kwargs=heuristic_kwargs or {},
        )
        rows.extend(_aggregate(list(run_fn(config))))
    return rows


def format_improvement_table(rows: list[ImprovementRow]) -> str:
    """Fixed-width report of an improvement study."""
    header = (
        f"{'heuristic':<20}{'ties':<14}{'runs':>5}{'chg%':>8}"
        f"{'ms-inc%':>9}{'m-impr%':>9}{'m-wors%':>9}{'mean dFT':>12}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.heuristic:<20}{r.tie_policy:<14}{r.runs:>5}"
            f"{100 * r.mapping_change_rate:>8.1f}"
            f"{100 * r.makespan_increase_rate:>9.1f}"
            f"{100 * r.machine_improved_rate:>9.1f}"
            f"{100 * r.machine_worsened_rate:>9.1f}"
            f"{r.mean_improvement.mean:>12.4g}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# E24 — cross-heuristic makespan comparison (Braun et al. anchor)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComparisonRow:
    """Mean makespan of one heuristic on one ETC class."""

    heuristic: str
    heterogeneity: Heterogeneity
    consistency: Consistency
    mean_makespan: float
    normalized: float  # mean makespan / best heuristic's mean on this class

    @property
    def etc_class(self) -> str:
        return f"{self.heterogeneity.value}/{self.consistency.value}"


def heuristic_comparison(
    heuristics: tuple[str, ...],
    *,
    num_tasks: int = 50,
    num_machines: int = 8,
    instances: int = 20,
    heterogeneities: tuple[Heterogeneity, ...] = (Heterogeneity.HIHI,),
    consistencies: tuple[Consistency, ...] = (Consistency.CONSISTENT,
                                              Consistency.INCONSISTENT),
    seed: int = 0,
    heuristic_kwargs=None,
    seed_genitor_with_minmin: bool = True,
) -> list[ComparisonRow]:
    """Run E24: mean original-mapping makespan per heuristic per class.

    ``seed_genitor_with_minmin`` replicates the Braun et al. GA
    methodology: Genitor's initial population contains the Min-Min
    solution, so its output is never worse than Min-Min's.
    """
    if not heuristics:
        raise ConfigurationError("need at least one heuristic")
    heuristic_kwargs = heuristic_kwargs or {}
    rows: list[ComparisonRow] = []
    root = np.random.SeedSequence(seed)
    for het in heterogeneities:
        for cons in consistencies:
            cell_seed, h_seed = np.random.SeedSequence(
                entropy=root.entropy,
                spawn_key=(stable_key(het.value, cons.value),),
            ).spawn(2)
            ensemble = generate_ensemble(
                instances,
                num_tasks,
                num_machines,
                heterogeneity=het,
                consistency=cons,
                rng=np.random.default_rng(cell_seed),
            )
            means: dict[str, float] = {}
            for name in heuristics:
                kwargs = dict(heuristic_kwargs.get(name, {}))
                if name in _STOCHASTIC and "rng" not in kwargs:
                    kwargs["rng"] = np.random.default_rng(h_seed)
                spans = []
                for etc in ensemble:
                    heuristic = get_heuristic(name, **kwargs)
                    seed_mapping = None
                    if name == "genitor" and seed_genitor_with_minmin:
                        seed_mapping = get_heuristic("min-min").map_tasks(etc).to_dict()
                    spans.append(
                        heuristic.map_tasks(etc, seed_mapping=seed_mapping).makespan()
                    )
                means[name] = float(np.mean(spans))
            best = min(means.values())
            for name in heuristics:
                rows.append(
                    ComparisonRow(
                        heuristic=name,
                        heterogeneity=het,
                        consistency=cons,
                        mean_makespan=means[name],
                        normalized=means[name] / best,
                    )
                )
    return rows


def format_comparison_table(rows: list[ComparisonRow]) -> str:
    """Fixed-width report of a heuristic comparison, grouped by class."""
    lines = []
    classes = sorted({r.etc_class for r in rows})
    for cls in classes:
        sel = sorted(
            (r for r in rows if r.etc_class == cls), key=lambda r: r.mean_makespan
        )
        lines.append(f"ETC class {cls}:")
        lines.append(f"  {'heuristic':<20}{'mean makespan':>16}{'vs best':>10}")
        for r in sel:
            lines.append(
                f"  {r.heuristic:<20}{r.mean_makespan:>16.6g}{r.normalized:>10.3f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()

"""Paper-format table renderers.

Each function regenerates the row layout of the corresponding tables in
the paper (used by the bench harness and the examples):

* :func:`render_etc_table` — ETC matrices (Tables 1, 4, 9, 12, 15);
* :func:`render_allocation_table` — per-step completion-time rows of a
  mapping (Tables 2, 3, 5–8);
* :func:`render_swa_table` — BI / completion-times / heuristic rows
  (Tables 10, 11);
* :func:`render_kpb_table` — completion-times / K-percent subset rows
  (Tables 13, 14);
* :func:`render_sufferage_table` — per-pass minimum-CT / sufferage /
  machine rows (Tables 16, 17);
* :func:`render_finish_times` and :func:`render_comparison` — final
  per-machine finishing-time summaries quoted in the examples' prose.
"""

from __future__ import annotations

import math

from repro.core.iterative import IterativeResult
from repro.core.metrics import IterativeComparison
from repro.core.schedule import Mapping
from repro.etc.matrix import ETCMatrix
from repro.heuristics.kpb import KPBStep
from repro.heuristics.sufferage import SufferagePass
from repro.heuristics.swa import SWAStep

__all__ = [
    "render_etc_table",
    "render_allocation_table",
    "render_swa_table",
    "render_kpb_table",
    "render_sufferage_table",
    "render_finish_times",
    "render_comparison",
]


def _fmt(value: float, width: int = 7) -> str:
    return f"{value:>{width}.6g}"


def render_etc_table(etc: ETCMatrix, title: str = "") -> str:
    """ETC matrix in the paper's task-rows/machine-columns layout."""
    body = etc.pretty()
    return f"{title}\n{body}" if title else body


def render_allocation_table(mapping: Mapping, title: str = "") -> str:
    """Per-resource-allocation rows: after each assignment, the
    completion time of every machine so far (Tables 2, 3, 5–8)."""
    etc = mapping.etc
    header = f"{'step':<6}{'task':<6}{'machine':<9}" + "".join(
        f"{m + ' CT':>13}" for m in etc.machines
    )
    lines = [header, "-" * len(header)]
    ready = dict(zip(etc.machines, mapping.initial_ready_times().tolist()))
    for i, a in enumerate(mapping.assignments, start=1):
        ready[a.machine] = a.completion
        cells = "".join(f"{ready[m]:>13.6g}" for m in etc.machines)
        lines.append(f"{i:<6}{a.task:<6}{a.machine:<9}{cells}")
    out = "\n".join(lines)
    return f"{title}\n{out}" if title else out


def render_swa_table(
    trace: tuple[SWAStep, ...], machines: tuple[str, ...], title: str = ""
) -> str:
    """SWA rows: BI, per-machine CTs after the step, heuristic used
    (Tables 10, 11).  Undefined BI renders as ``x`` as in the paper."""
    header = (
        f"{'task':<6}{'BI':>8}  "
        + "".join(f"{m + ' CT':>13}" for m in machines)
        + f"{'heuristic':>11}"
    )
    lines = [header, "-" * len(header)]
    ready = dict.fromkeys(machines, 0.0)
    for step in trace:
        ready[step.machine] = step.completion
        bi = "x" if math.isnan(step.bi) else f"{step.bi:.4g}"
        cells = "".join(f"{ready[m]:>13.6g}" for m in machines)
        lines.append(f"{step.task:<6}{bi:>8}  {cells}{step.heuristic.upper():>11}")
    out = "\n".join(lines)
    return f"{title}\n{out}" if title else out


def render_kpb_table(
    trace: tuple[KPBStep, ...], machines: tuple[str, ...], title: str = ""
) -> str:
    """K-percent Best rows: per-machine CTs and the subset considered
    (Tables 13, 14)."""
    header = (
        f"{'task':<6}"
        + "".join(f"{m + ' CT':>13}" for m in machines)
        + f"  {'K-% subset'}"
    )
    lines = [header, "-" * len(header)]
    ready = dict.fromkeys(machines, 0.0)
    for step in trace:
        ready[step.machine] = step.completion
        cells = "".join(f"{ready[m]:>13.6g}" for m in machines)
        subset = ", ".join(step.subset)
        lines.append(f"{step.task:<6}{cells}  {{{subset}}}")
    out = "\n".join(lines)
    return f"{title}\n{out}" if title else out


def render_sufferage_table(
    trace: tuple[SufferagePass, ...], title: str = ""
) -> str:
    """Sufferage rows: per pass, each examined task's minimum CT,
    sufferage value, machine and contest outcome (Tables 16, 17)."""
    header = (
        f"{'pass':<6}{'task':<6}{'min CT':>9}{'sufferage':>11}"
        f"{'machine':>9}  outcome"
    )
    lines = [header, "-" * len(header)]
    for p in trace:
        for d in p.decisions:
            extra = f" (displaces {d.displaced_task})" if d.outcome == "displaced" else ""
            extra = (
                f" (kept by {d.displaced_task})" if d.outcome == "rejected" else extra
            )
            lines.append(
                f"{p.index + 1:<6}{d.task:<6}{d.earliest_ct:>9.6g}"
                f"{d.sufferage:>11.6g}{d.machine:>9}  {d.outcome}{extra}"
            )
    out = "\n".join(lines)
    return f"{title}\n{out}" if title else out


def render_finish_times(mapping: Mapping, title: str = "") -> str:
    """Per-machine finishing times with the makespan machine flagged."""
    finish = mapping.machine_finish_times()
    makespan_machine = mapping.makespan_machine()
    lines = [f"{'machine':<9}{'finish':>10}"]
    lines.append("-" * 19)
    for m, t in finish.items():
        flag = "  <- makespan" if m == makespan_machine else ""
        lines.append(f"{m:<9}{t:>10.6g}{flag}")
    out = "\n".join(lines)
    return f"{title}\n{out}" if title else out


def render_comparison(
    comparison: IterativeComparison, title: str = ""
) -> str:
    """Original vs iterative finishing times for every machine."""
    header = f"{'machine':<9}{'original':>12}{'iterative':>12}{'delta':>12}"
    lines = [header, "-" * len(header)]
    for m in comparison.machines:
        delta = 0.0 if abs(m.delta) < 1e-9 else m.delta
        lines.append(
            f"{m.machine:<9}{m.original:>12.6g}{m.iterative:>12.6g}{delta:>12.6g}"
        )
    lines.append(
        f"makespan: original {comparison.original_makespan:.6g}, "
        f"final {comparison.final_makespan:.6g}"
        + (" (INCREASED)" if comparison.makespan_increased else "")
    )
    out = "\n".join(lines)
    return f"{title}\n{out}" if title else out


def render_iteration_overview(result: IterativeResult) -> str:
    """One-line-per-iteration overview of an iterative run."""
    lines = [
        f"{'iter':<6}{'machines':<10}{'tasks':<7}{'makespan':>10}"
        f"{'frozen':>9}  frozen tasks"
    ]
    lines.append("-" * len(lines[0]))
    for rec in result.iterations:
        lines.append(
            f"{rec.index:<6}{rec.etc.num_machines:<10}{rec.etc.num_tasks:<7}"
            f"{rec.makespan:>10.6g}{rec.frozen_machine:>9}  "
            f"{', '.join(rec.frozen_tasks) or '-'}"
        )
    return "\n".join(lines)


__all__.append("render_iteration_overview")

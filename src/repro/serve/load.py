"""Synthetic-traffic load harness for the scheduling service.

Drives a running service over plain :mod:`urllib.request` from a small
thread pool — the client side deliberately shares no code with the
server, so a harness bug cannot mask a server bug.  Traffic is
open-loop paced: request *i* is released at ``i / rate`` seconds after
the start (``rate=None`` = as fast as the workers can go), the standard
way to measure a service's latency under a target arrival rate rather
than under its own back-pressure.

The report (schema ``repro-serve-load/1``) carries the requests/s
headline plus p50/p95/max latency and the server-observed cache-hit
split; ``repro serve-load`` (and the ``serve-load`` bench workload)
write it next to the bench reports so CI can publish it as an
artifact.
"""

from __future__ import annotations

import json
import threading
import time
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.exceptions import ConfigurationError

__all__ = [
    "LOAD_SCHEMA",
    "post_json",
    "get_json",
    "run_load",
    "format_load_report",
]

#: Load report format identifier; bump when the JSON layout changes.
LOAD_SCHEMA = "repro-serve-load/1"


def post_json(url: str, payload: dict, *, timeout: float = 30.0):
    """POST one JSON payload; returns ``(status, parsed_body)``.

    Non-2xx statuses are returned, not raised — the error envelope is
    part of the service's contract and callers assert on it.
    """
    data = json.dumps(payload).encode("utf-8")
    request = Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def get_json(url: str, *, timeout: float = 30.0):
    """GET one JSON resource; returns ``(status, parsed_body)``."""
    try:
        with urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


def _percentile(sorted_samples: list[float], q: float) -> float:
    if not sorted_samples:
        return 0.0
    index = min(len(sorted_samples) - 1, int(q * len(sorted_samples)))
    return sorted_samples[index]


def run_load(
    url: str,
    payload: dict,
    *,
    requests: int = 100,
    concurrency: int = 8,
    rate: float | None = None,
    timeout: float = 30.0,
) -> dict:
    """Issue ``requests`` copies of ``payload`` and report latency/throughput.

    ``url`` is the endpoint to POST to (e.g.
    ``http://127.0.0.1:8351/v1/schedule``); ``concurrency`` bounds the
    worker threads; ``rate`` paces release times in requests/s
    (``None`` = unpaced closed loop).
    """
    if requests < 1:
        raise ConfigurationError(f"requests must be >= 1, got {requests}")
    if concurrency < 1:
        raise ConfigurationError(f"concurrency must be >= 1, got {concurrency}")
    if rate is not None and rate <= 0:
        raise ConfigurationError(f"rate must be > 0, got {rate}")

    next_index = iter(range(requests))
    index_lock = threading.Lock()
    latencies_s: list[float] = []
    outcomes = {"ok": 0, "errors": 0, "cached": 0, "computed": 0}
    outcome_lock = threading.Lock()
    start = time.perf_counter()

    def worker() -> None:
        while True:
            with index_lock:
                index = next(next_index, None)
            if index is None:
                return
            if rate is not None:
                release = start + index / rate
                delay = release - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            sent = time.perf_counter()
            try:
                status, body = post_json(url, payload, timeout=timeout)
            except (URLError, ConnectionError, TimeoutError, OSError):
                status, body = None, None
            elapsed = time.perf_counter() - sent
            with outcome_lock:
                latencies_s.append(elapsed)
                if status == 200:
                    outcomes["ok"] += 1
                    if isinstance(body, dict) and body.get("cached"):
                        outcomes["cached"] += 1
                    else:
                        outcomes["computed"] += 1
                else:
                    outcomes["errors"] += 1

    threads = [
        threading.Thread(target=worker, name=f"serve-load-{i}", daemon=True)
        for i in range(min(concurrency, requests))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start

    window = sorted(ms * 1e3 for ms in latencies_s)
    return {
        "schema": LOAD_SCHEMA,
        "url": url,
        "requests": requests,
        "concurrency": concurrency,
        "rate": rate,
        "ok": outcomes["ok"],
        "errors": outcomes["errors"],
        "cached": outcomes["cached"],
        "computed": outcomes["computed"],
        "wall_s": round(wall_s, 6),
        "requests_per_s": round(requests / wall_s, 3) if wall_s else 0.0,
        "latency_ms": {
            "p50": round(_percentile(window, 0.50), 3),
            "p95": round(_percentile(window, 0.95), 3),
            "max": round(max(window), 3) if window else 0.0,
            "mean": round(sum(window) / len(window), 3) if window else 0.0,
        },
    }


def format_load_report(report: dict) -> str:
    """The requests/s headline plus the latency spread, one per line."""
    latency = report["latency_ms"]
    return "\n".join(
        [
            f"serve-load: {report['requests']} request(s) at concurrency "
            f"{report['concurrency']}"
            + (f", paced {report['rate']:g}/s" if report.get("rate") else ""),
            f"  requests/s : {report['requests_per_s']:.1f}  "
            f"({report['ok']} ok, {report['errors']} error(s), "
            f"{report['cached']} cached)",
            f"  latency ms : p50 {latency['p50']:.3f}  "
            f"p95 {latency['p95']:.3f}  max {latency['max']:.3f}",
        ]
    )

"""Request models and content-addressed identity for :mod:`repro.serve`.

A schedule request (schema ``repro-serve-request/1``) is a JSON object
naming a *kind* of work plus the inputs it needs:

* ``kind`` — ``"map"`` (one heuristic mapping), ``"iterate"`` (the
  paper's iterative technique with its full refinement trace), or
  ``"study"`` (the aggregate improvement statistics over a generated
  ensemble);
* exactly one of ``etc`` (an inline instance — ``{"values": [[...]],
  "tasks": [...], "machines": [...]}`` or ``{"csv": "..."}``) or
  ``ensemble`` (a generation spec — tasks/machines/instances/
  heterogeneity/consistency/method).  ``map``/``iterate`` take ``etc``,
  ``study`` takes ``ensemble``;
* ``heuristic`` / ``ties`` / ``seed`` / ``seeded`` / ``backend`` —
  the scheduling configuration, validated against the live registries;
* ``scenarios`` — reserved for multi-scenario payloads (Bosman et al.,
  arXiv 2402.19259): structurally validated and part of the cache
  identity today, rejected as unimplemented when non-empty;
* ``trace`` / ``request_id`` — *non-identity* fields: they change what
  a response carries, never what is computed.

Validation reuses the library contracts directly: inline matrices go
through :class:`~repro.etc.matrix.ETCMatrix` (shape/finiteness/
positivity → :class:`~repro.exceptions.ETCShapeError` /
:class:`~repro.exceptions.ETCValueError`) and CSV payloads through
:func:`repro.etc.io.from_csv` (label strip/duplicate rules).  Any such
failure surfaces as :class:`RequestValidationError` with the underlying
message preserved, so the HTTP layer can map it to a 400 without
inventing a second validation path.

:func:`request_key` is the service's cache address: the run ledger's
SHA-256 :func:`~repro.obs.ledger.config_hash` over
:func:`request_identity` — the canonical dict of every
*result-determining* field and nothing else.  Two requests that differ
only in ``trace`` verbosity or ``request_id`` share a key; any change
to the ETC values, heuristic, tie policy, seed, backend or ensemble
spec misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.etc import io as etc_io
from repro.etc.generation import Consistency, Heterogeneity
from repro.etc.matrix import ETCMatrix
from repro.exceptions import ReproError

__all__ = [
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "REQUEST_KINDS",
    "GENERATION_METHODS",
    "ServeError",
    "RequestValidationError",
    "OverloadError",
    "ScheduleRequest",
    "parse_request",
    "request_identity",
    "request_key",
]

#: Request format identifier; bump when the payload layout changes.
REQUEST_SCHEMA = "repro-serve-request/1"

#: Response format identifier; bump when the response layout changes.
RESPONSE_SCHEMA = "repro-serve-response/1"

#: The kinds of work the service executes.
REQUEST_KINDS = ("map", "iterate", "study")

#: Ensemble generation methods (mirrors ``repro generate --method``).
GENERATION_METHODS = ("range", "cvb")

#: Tie policies accepted by :func:`repro.core.ties.make_tie_breaker`.
_TIE_POLICIES = ("deterministic", "random")

#: Heuristics whose factories require an ``rng`` (mirrors the CLI).
_STOCHASTIC_HEURISTICS = frozenset(
    {"genitor", "random", "simulated-annealing", "tabu-search"}
)

#: Top-level payload keys the parser accepts.
_KNOWN_FIELDS = frozenset(
    {
        "schema",
        "kind",
        "etc",
        "ensemble",
        "heuristic",
        "ties",
        "seed",
        "seeded",
        "backend",
        "max_iterations",
        "scenarios",
        "trace",
        "request_id",
    }
)

_ENSEMBLE_FIELDS = frozenset(
    {"tasks", "machines", "instances", "heterogeneity", "consistency", "method"}
)


class ServeError(ReproError):
    """Base class for scheduling-service failures."""


class RequestValidationError(ServeError, ValueError):
    """A request payload failed validation (HTTP 400)."""


class OverloadError(ServeError):
    """The service is at its pending-request capacity (HTTP 503)."""


@dataclass(frozen=True)
class ScheduleRequest:
    """One validated, canonicalised schedule request.

    Inline matrices are stored in canonical label+values form (whatever
    the wire encoding — CSV text and JSON values canonicalise to the
    same tuple structure), so equality of the stored form is equality
    of the scheduling problem.
    """

    kind: str
    heuristic: str = "min-min"
    ties: str = "deterministic"
    seed: int = 0
    seeded: bool = False
    backend: str = "incremental"
    max_iterations: int | None = None
    #: Canonical inline instance: (values rows, task labels, machine
    #: labels), or ``None`` when the request carries an ensemble spec.
    etc_values: tuple[tuple[float, ...], ...] | None = None
    etc_tasks: tuple[str, ...] | None = None
    etc_machines: tuple[str, ...] | None = None
    #: Canonical ensemble spec, or ``None`` for inline-instance kinds.
    ensemble: dict | None = None
    #: Reserved multi-scenario payload (must be empty for now).
    scenarios: tuple = ()
    # -- non-identity fields -------------------------------------------
    trace: bool = False
    request_id: str | None = field(default=None, compare=False)

    def etc_matrix(self) -> ETCMatrix:
        """Rebuild the validated inline instance."""
        if self.etc_values is None:
            raise ServeError(f"request kind {self.kind!r} has no inline ETC")
        return ETCMatrix(
            [list(row) for row in self.etc_values],
            tasks=list(self.etc_tasks) if self.etc_tasks else None,
            machines=list(self.etc_machines) if self.etc_machines else None,
        )


def _fail(message: str) -> RequestValidationError:
    return RequestValidationError(message)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise _fail(message)


def _parse_int(payload: dict, name: str, default: int) -> int:
    value = payload.get(name, default)
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{name!r} must be an integer, got {value!r}",
    )
    return value


def _parse_bool(payload: dict, name: str, default: bool) -> bool:
    value = payload.get(name, default)
    _require(isinstance(value, bool), f"{name!r} must be a boolean, got {value!r}")
    return value


def _parse_etc(spec) -> ETCMatrix:
    """Inline instance → validated :class:`ETCMatrix`.

    Accepts the JSON form (``values`` + optional ``tasks``/``machines``
    labels) or a CSV payload (``{"csv": "..."}``), each routed through
    the library's own validation so the 400 catalogue is exactly the
    :class:`~repro.exceptions.ETCError` contracts.
    """
    _require(isinstance(spec, dict), f"'etc' must be an object, got {spec!r}")
    has_csv = "csv" in spec
    has_values = "values" in spec
    _require(
        has_csv != has_values,
        "'etc' needs exactly one of 'csv' or 'values'",
    )
    try:
        if has_csv:
            _require(
                isinstance(spec["csv"], str), "'etc.csv' must be a CSV string"
            )
            unknown = set(spec) - {"csv"}
            _require(not unknown, f"unknown 'etc' field(s): {sorted(unknown)}")
            return etc_io.from_csv(spec["csv"])
        unknown = set(spec) - {"values", "tasks", "machines"}
        _require(not unknown, f"unknown 'etc' field(s): {sorted(unknown)}")
        return ETCMatrix(
            spec["values"], tasks=spec.get("tasks"), machines=spec.get("machines")
        )
    except RequestValidationError:
        raise
    except ReproError as exc:
        raise RequestValidationError(f"invalid ETC payload: {exc}") from exc
    except (TypeError, ValueError) as exc:
        raise RequestValidationError(f"invalid ETC payload: {exc}") from exc


def _parse_ensemble(spec) -> dict:
    """Generation spec → canonical ensemble dict (enum values checked)."""
    _require(isinstance(spec, dict), f"'ensemble' must be an object, got {spec!r}")
    unknown = set(spec) - _ENSEMBLE_FIELDS
    _require(not unknown, f"unknown 'ensemble' field(s): {sorted(unknown)}")
    tasks = _parse_int(spec, "tasks", 40)
    machines = _parse_int(spec, "machines", 8)
    instances = _parse_int(spec, "instances", 10)
    _require(tasks >= 1, f"'ensemble.tasks' must be >= 1, got {tasks}")
    _require(machines >= 1, f"'ensemble.machines' must be >= 1, got {machines}")
    _require(instances >= 1, f"'ensemble.instances' must be >= 1, got {instances}")
    heterogeneity = spec.get("heterogeneity", Heterogeneity.HIHI.value)
    try:
        heterogeneity = Heterogeneity(heterogeneity).value
    except ValueError:
        raise _fail(
            f"unknown heterogeneity {heterogeneity!r}; choose from "
            f"{[h.value for h in Heterogeneity]}"
        ) from None
    consistency = spec.get("consistency", Consistency.INCONSISTENT.value)
    try:
        consistency = Consistency(consistency).value
    except ValueError:
        raise _fail(
            f"unknown consistency {consistency!r}; choose from "
            f"{[c.value for c in Consistency]}"
        ) from None
    method = spec.get("method", "range")
    _require(
        method in GENERATION_METHODS,
        f"unknown generation method {method!r}; choose from "
        f"{list(GENERATION_METHODS)}",
    )
    return {
        "tasks": tasks,
        "machines": machines,
        "instances": instances,
        "heterogeneity": heterogeneity,
        "consistency": consistency,
        "method": method,
    }


def parse_request(payload) -> ScheduleRequest:
    """Validate one JSON payload into a :class:`ScheduleRequest`.

    Raises :class:`RequestValidationError` on every malformed input —
    unknown fields are rejected rather than ignored, so a typoed knob
    cannot silently fall back to its default.
    """
    from repro.heuristics import heuristic_names
    from repro.heuristics.backends import backend_names

    _require(isinstance(payload, dict), "request body must be a JSON object")
    schema = payload.get("schema", REQUEST_SCHEMA)
    _require(
        schema == REQUEST_SCHEMA,
        f"unsupported request schema {schema!r} (expected {REQUEST_SCHEMA!r})",
    )
    unknown = set(payload) - _KNOWN_FIELDS
    _require(not unknown, f"unknown request field(s): {sorted(unknown)}")

    kind = payload.get("kind")
    _require(
        kind in REQUEST_KINDS,
        f"'kind' must be one of {list(REQUEST_KINDS)}, got {kind!r}",
    )

    heuristic = payload.get("heuristic", "min-min")
    _require(
        heuristic in heuristic_names(),
        f"unknown heuristic {heuristic!r}; known: {list(heuristic_names())}",
    )
    ties = payload.get("ties", "deterministic")
    _require(
        ties in _TIE_POLICIES,
        f"unknown tie policy {ties!r}; choose from {list(_TIE_POLICIES)}",
    )
    backend = payload.get("backend", "incremental")
    _require(
        backend in backend_names(),
        f"unknown backend {backend!r}; known: {list(backend_names())}",
    )
    seed = _parse_int(payload, "seed", 0)
    seeded = _parse_bool(payload, "seeded", False)
    trace = _parse_bool(payload, "trace", False)

    max_iterations = payload.get("max_iterations")
    if max_iterations is not None:
        _require(
            isinstance(max_iterations, int)
            and not isinstance(max_iterations, bool)
            and max_iterations >= 1,
            f"'max_iterations' must be an integer >= 1, got {max_iterations!r}",
        )

    request_id = payload.get("request_id")
    _require(
        request_id is None or isinstance(request_id, str),
        f"'request_id' must be a string, got {request_id!r}",
    )

    scenarios = payload.get("scenarios", [])
    _require(
        isinstance(scenarios, list),
        f"'scenarios' must be a list, got {scenarios!r}",
    )
    _require(
        not scenarios,
        "multi-scenario payloads are reserved but not implemented yet "
        "(see ROADMAP.md: scenario-set scheduling)",
    )

    has_etc = payload.get("etc") is not None
    has_ensemble = payload.get("ensemble") is not None
    if kind == "study":
        _require(has_ensemble, "'study' requests need an 'ensemble' spec")
        _require(not has_etc, "'study' requests take 'ensemble', not 'etc'")
        ensemble = _parse_ensemble(payload["ensemble"])
        etc = None
    else:
        _require(has_etc, f"{kind!r} requests need an inline 'etc' instance")
        _require(
            not has_ensemble, f"{kind!r} requests take 'etc', not 'ensemble'"
        )
        ensemble = None
        etc = _parse_etc(payload["etc"])

    return ScheduleRequest(
        kind=kind,
        heuristic=heuristic,
        ties=ties,
        seed=seed,
        seeded=seeded,
        backend=backend,
        max_iterations=max_iterations,
        etc_values=(
            tuple(tuple(float(v) for v in row) for row in etc.values.tolist())
            if etc is not None
            else None
        ),
        etc_tasks=tuple(etc.tasks) if etc is not None else None,
        etc_machines=tuple(etc.machines) if etc is not None else None,
        ensemble=ensemble,
        scenarios=tuple(scenarios),
        trace=trace,
        request_id=request_id,
    )


def request_identity(request: ScheduleRequest) -> dict:
    """The canonical result-determining dict of one request.

    Everything that changes the computed result is here; everything
    that only changes response presentation (``trace``, ``request_id``)
    is deliberately absent — the property the cache-keying test battery
    pins down.
    """
    identity = {
        "schema": REQUEST_SCHEMA,
        "kind": request.kind,
        "heuristic": request.heuristic,
        "ties": request.ties,
        "seed": request.seed,
        "seeded": request.seeded,
        "backend": request.backend,
        "max_iterations": request.max_iterations,
        "scenarios": list(request.scenarios),
    }
    if request.etc_values is not None:
        identity["etc"] = {
            "values": [list(row) for row in request.etc_values],
            "tasks": list(request.etc_tasks),
            "machines": list(request.etc_machines),
        }
    if request.ensemble is not None:
        identity["ensemble"] = dict(request.ensemble)
    return identity


def request_key(request: ScheduleRequest) -> str:
    """Content address of one request: the ledger's SHA-256 config hash."""
    from repro.obs.ledger import config_hash

    return config_hash(request_identity(request))

"""repro.serve — scheduling-as-a-service over the library core.

An async HTTP layer (stdlib :mod:`asyncio` only) that accepts inline
ETC instances or ensemble-generation specs and returns mappings,
iterative-technique refinement traces and study summaries, with
content-addressed response caching keyed by the same SHA-256
config-hash scheme as the runner's cell cache.  See docs/serving.md
for the endpoint reference and ``repro serve`` for the CLI entry
point.
"""

from repro.serve.cache import (
    DEFAULT_RESPONSE_CACHE_DIR,
    RESPONSE_CACHE_SCHEMA,
    ResponseCache,
)
from repro.serve.http import MAX_BODY_BYTES, handle_connection, start_server
from repro.serve.load import (
    LOAD_SCHEMA,
    format_load_report,
    get_json,
    post_json,
    run_load,
)
from repro.serve.models import (
    GENERATION_METHODS,
    REQUEST_KINDS,
    REQUEST_SCHEMA,
    RESPONSE_SCHEMA,
    OverloadError,
    RequestValidationError,
    ScheduleRequest,
    ServeError,
    parse_request,
    request_identity,
    request_key,
)
from repro.serve.service import STATS_SCHEMA, SchedulingService, execute_request

__all__ = [
    # models
    "REQUEST_SCHEMA",
    "RESPONSE_SCHEMA",
    "REQUEST_KINDS",
    "GENERATION_METHODS",
    "ServeError",
    "RequestValidationError",
    "OverloadError",
    "ScheduleRequest",
    "parse_request",
    "request_identity",
    "request_key",
    # cache
    "RESPONSE_CACHE_SCHEMA",
    "DEFAULT_RESPONSE_CACHE_DIR",
    "ResponseCache",
    # service
    "STATS_SCHEMA",
    "SchedulingService",
    "execute_request",
    # http
    "MAX_BODY_BYTES",
    "handle_connection",
    "start_server",
    # load
    "LOAD_SCHEMA",
    "run_load",
    "post_json",
    "get_json",
    "format_load_report",
]

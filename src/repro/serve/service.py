"""The scheduling service core: validate → cache-lookup → compute.

:class:`SchedulingService` is transport-agnostic — the HTTP layer
(:mod:`repro.serve.http`), the tests and the bench harness all drive
the same ``await service.handle(payload)`` entry point, which returns
``(http_status, response_dict)`` without ever touching a socket.

Execution model
---------------
Requests compute on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
(``max_workers``), with an ``max_pending`` admission cap: a request
arriving while ``max_pending`` are already in flight is rejected with
503 instead of queueing unboundedly — the same shed-instead-of-drown
policy as the rolling loop's admission control.

When a :class:`~repro.obs.tracer.CollectingTracer` is installed the
service runs traced requests *serially on the event-loop thread* under
an :class:`asyncio.Lock`: the tracer's span stack is LIFO and
deliberately not thread-safe (see :mod:`repro.obs.tracer`), so traced
mode trades concurrency for a single well-nested trace tree —
``serve.request`` spans with a ``serve.compute`` child only on cache
misses, which is exactly the property the smoke gate asserts.  Untraced
requests (the production default) fan out over the pool.

Caching
-------
Responses are cached content-addressed by
:func:`~repro.serve.models.request_key` (the ledger's SHA-256 config
hash over the request identity) in a
:class:`~repro.serve.cache.ResponseCache`; repeat requests are served
from disk without recomputation and counted as ``serve.cache_hits``.

Ledger
------
:meth:`SchedulingService.ledger_record` summarises one service session
(request/hit/error counts, latency percentiles) as a standard
``repro-ledger/1`` record; the CLI appends it per request batch and on
clean shutdown.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.exceptions import ConfigurationError, ReproError
from repro.serve.cache import DEFAULT_RESPONSE_CACHE_DIR, ResponseCache
from repro.serve.models import (
    RESPONSE_SCHEMA,
    OverloadError,
    RequestValidationError,
    ScheduleRequest,
    parse_request,
    request_identity,
    request_key,
)

__all__ = [
    "STATS_SCHEMA",
    "SchedulingService",
    "execute_request",
]

#: ``/v1/stats`` payload format identifier.
STATS_SCHEMA = "repro-serve-stats/1"

#: Latency samples kept for the percentile window (ring buffer bound).
_LATENCY_WINDOW = 10_000


def _make_heuristic(request: ScheduleRequest):
    """Backend-routed heuristic for one request (mirrors the CLI)."""
    from repro.heuristics.backends import get_backend

    kwargs = {}
    if request.heuristic in ("genitor", "random", "simulated-annealing",
                             "tabu-search"):
        kwargs["rng"] = request.seed
    return get_backend(request.backend).make(request.heuristic, **kwargs)


def _mapping_payload(mapping) -> dict:
    return {
        "assignments": mapping.to_dict(),
        "finish_times": {
            m: round(t, 10) for m, t in mapping.machine_finish_times().items()
        },
        "makespan": mapping.makespan(),
    }


def _execute_map(request: ScheduleRequest) -> dict:
    from repro.core.ties import make_tie_breaker

    etc = request.etc_matrix()
    heuristic = _make_heuristic(request)
    breaker = make_tie_breaker(request.ties, rng=request.seed)
    mapping = heuristic.map_tasks(etc, tie_breaker=breaker)
    return {
        "kind": "map",
        "heuristic": request.heuristic,
        "tasks": etc.num_tasks,
        "machines": etc.num_machines,
        **_mapping_payload(mapping),
    }


def _execute_iterate(request: ScheduleRequest) -> dict:
    from repro.core.iterative import IterativeScheduler
    from repro.core.metrics import compare_iterative
    from repro.core.seeding import SeededIterativeScheduler
    from repro.core.ties import make_tie_breaker

    etc = request.etc_matrix()
    heuristic = _make_heuristic(request)
    breaker = make_tie_breaker(request.ties, rng=request.seed)
    scheduler_cls = (
        SeededIterativeScheduler if request.seeded else IterativeScheduler
    )
    result = scheduler_cls(heuristic, tie_breaker=breaker).run(
        etc, max_iterations=request.max_iterations
    )
    comparison = compare_iterative(result)
    return {
        "kind": "iterate",
        "heuristic": request.heuristic,
        "seeded": request.seeded,
        "iterations": result.num_iterations,
        "makespans": list(result.makespans()),
        "removal_order": list(result.removal_order),
        "unfrozen": list(result.unfrozen),
        "makespan_increased": comparison.makespan_increased,
        "mapping_changed": comparison.mapping_changed,
        "original_makespan": comparison.original_makespan,
        "final_makespan": comparison.final_makespan,
        "machines": [
            {
                "machine": m.machine,
                "original": m.original,
                "iterative": m.iterative,
                "delta": m.delta,
            }
            for m in comparison.machines
        ],
        "final_mapping": result.final_mapping().to_dict(),
    }


def _execute_study(request: ScheduleRequest) -> dict:
    from repro.analysis.study import improvement_study
    from repro.etc.generation import Consistency, Heterogeneity

    ensemble = request.ensemble
    rows = improvement_study(
        heuristics=(request.heuristic,),
        num_tasks=ensemble["tasks"],
        num_machines=ensemble["machines"],
        instances=ensemble["instances"],
        heterogeneity=Heterogeneity(ensemble["heterogeneity"]),
        consistency=Consistency(ensemble["consistency"]),
        tie_policies=(request.ties,),
        seeded_iterations=request.seeded,
        seed=request.seed,
        backend=request.backend,
        generation_method=ensemble["method"],
    )
    return {
        "kind": "study",
        "ensemble": dict(ensemble),
        "rows": [
            {
                "heuristic": r.heuristic,
                "tie_policy": r.tie_policy,
                "runs": r.runs,
                "mapping_change_rate": r.mapping_change_rate,
                "makespan_increase_rate": r.makespan_increase_rate,
                "machine_improved_rate": r.machine_improved_rate,
                "machine_worsened_rate": r.machine_worsened_rate,
                "mean_improvement": {
                    "n": r.mean_improvement.n,
                    "mean": r.mean_improvement.mean,
                    "std": r.mean_improvement.std,
                    "ci_low": r.mean_improvement.ci_low,
                    "ci_high": r.mean_improvement.ci_high,
                },
            }
            for r in rows
        ],
    }


_EXECUTORS = {
    "map": _execute_map,
    "iterate": _execute_iterate,
    "study": _execute_study,
}


def execute_request(request: ScheduleRequest) -> dict:
    """Compute one validated request's result dict (synchronously).

    Pure with respect to the request identity: two requests with equal
    :func:`~repro.serve.models.request_key` produce equal results,
    which is what makes the response cache sound.
    """
    return _EXECUTORS[request.kind](request)


def _percentile(sorted_samples: list[float], q: float) -> float:
    if not sorted_samples:
        return 0.0
    index = min(len(sorted_samples) - 1, int(q * len(sorted_samples)))
    return sorted_samples[index]


class SchedulingService:
    """Transport-agnostic request handler with caching and stats.

    Parameters
    ----------
    cache_dir:
        Response cache directory, or ``None`` to disable caching (every
        request recomputes; used by the bench reference variant).
    max_workers:
        Worker threads computing untraced requests.
    max_pending:
        Admission cap — in-flight requests beyond this are shed (503).
    """

    def __init__(
        self,
        cache_dir: str | None = DEFAULT_RESPONSE_CACHE_DIR,
        *,
        max_workers: int = 4,
        max_pending: int = 64,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.cache = ResponseCache(cache_dir) if cache_dir is not None else None
        self.max_workers = max_workers
        self.max_pending = max_pending
        self._pool: ThreadPoolExecutor | None = None
        self._trace_lock = asyncio.Lock()
        self._inflight = 0
        self._started = time.perf_counter()
        self._ledger_mark = 0
        self.counts = {
            "requests": 0,
            "cache_hits": 0,
            "computed": 0,
            "validation_errors": 0,
            "execution_errors": 0,
            "shed": 0,
        }
        self.by_kind: dict[str, int] = {}
        self._latencies_ms: list[float] = []

    # -- internals -----------------------------------------------------
    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-serve"
            )
        return self._pool

    def _record_latency(self, elapsed_s: float) -> None:
        self._latencies_ms.append(elapsed_s * 1e3)
        if len(self._latencies_ms) > _LATENCY_WINDOW:
            del self._latencies_ms[: -_LATENCY_WINDOW]

    def _response(self, request: ScheduleRequest, key: str, result: dict,
                  *, cached: bool) -> dict:
        response = {
            "schema": RESPONSE_SCHEMA,
            "key": key,
            "cached": cached,
            "result": result,
        }
        if request.request_id is not None:
            response["request_id"] = request.request_id
        return response

    async def _compute(self, request: ScheduleRequest) -> dict:
        """Run :func:`execute_request` traced-serial or pooled."""
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        if tracer.enabled:
            # The collecting tracer's span stack is not thread-safe;
            # traced mode serialises on the loop thread so every
            # request yields one well-nested serve.request tree.
            with tracer.span("serve.compute", kind=request.kind,
                             heuristic=request.heuristic):
                return execute_request(request)
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor(), execute_request, request
        )

    # -- public surface ------------------------------------------------
    async def handle(self, payload) -> tuple[int, dict]:
        """Serve one request payload; returns ``(status, response)``.

        Never raises for request-level failures — validation problems
        come back as 400, execution failures as 500 and overload as
        503, each in the documented error envelope — so one broken
        request can never take down the connection loop.
        """
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        started = time.perf_counter()
        if self._inflight >= self.max_pending:
            self.counts["shed"] += 1
            error = OverloadError(
                f"service at capacity ({self.max_pending} request(s) in "
                "flight); retry later"
            )
            return 503, _error_body("overload", error)
        self._inflight += 1
        self.counts["requests"] += 1
        tracer.count("serve.requests")
        try:
            if tracer.enabled:
                async with self._trace_lock:
                    with tracer.span("serve.request"):
                        status, response = await self._handle_inner(payload)
            else:
                status, response = await self._handle_inner(payload)
            return status, response
        finally:
            self._inflight -= 1
            self._record_latency(time.perf_counter() - started)

    async def _handle_inner(self, payload) -> tuple[int, dict]:
        from repro.obs.tracer import get_tracer

        tracer = get_tracer()
        try:
            request = parse_request(payload)
        except RequestValidationError as exc:
            self.counts["validation_errors"] += 1
            tracer.count("serve.validation_errors")
            return 400, _error_body("validation", exc)
        self.by_kind[request.kind] = self.by_kind.get(request.kind, 0) + 1
        key = request_key(request)
        if self.cache is not None:
            try:
                result = self.cache.load(key)
            except ConfigurationError as exc:
                self.counts["execution_errors"] += 1
                return 500, _error_body("execution", exc)
            if result is not None:
                self.counts["cache_hits"] += 1
                tracer.count("serve.cache_hits")
                return 200, self._response(request, key, result, cached=True)
        try:
            result = await self._compute(request)
        except ReproError as exc:
            self.counts["execution_errors"] += 1
            tracer.count("serve.execution_errors")
            return 500, _error_body("execution", exc)
        self.counts["computed"] += 1
        tracer.count("serve.computed")
        if self.cache is not None:
            self.cache.store(key, request_identity(request), result)
        return 200, self._response(request, key, result, cached=False)

    def stats(self) -> dict:
        """The ``/v1/stats`` payload (schema ``repro-serve-stats/1``)."""
        window = sorted(self._latencies_ms)
        return {
            "schema": STATS_SCHEMA,
            "uptime_s": round(time.perf_counter() - self._started, 3),
            "inflight": self._inflight,
            "max_pending": self.max_pending,
            "max_workers": self.max_workers,
            "cache_dir": str(self.cache.root) if self.cache else None,
            "counts": dict(self.counts),
            "by_kind": dict(self.by_kind),
            "latency_ms": {
                "count": len(window),
                "p50": round(_percentile(window, 0.50), 3),
                "p95": round(_percentile(window, 0.95), 3),
                "max": round(max(window), 3) if window else 0.0,
            },
        }

    def ledger_record(self, *, config: dict | None = None) -> dict | None:
        """One ``repro-ledger/1`` record for the requests since the last
        call, or ``None`` when no new request arrived (nothing to log).
        """
        from repro.obs.ledger import build_record

        if self.counts["requests"] == self._ledger_mark:
            return None
        self._ledger_mark = self.counts["requests"]
        stats = self.stats()
        metrics = {
            "serve.requests": stats["counts"]["requests"],
            "serve.cache_hits": stats["counts"]["cache_hits"],
            "serve.computed": stats["counts"]["computed"],
            "serve.errors": (
                stats["counts"]["validation_errors"]
                + stats["counts"]["execution_errors"]
            ),
            "serve.shed": stats["counts"]["shed"],
            "serve.latency_p50_ms": stats["latency_ms"]["p50"],
            "serve.latency_p95_ms": stats["latency_ms"]["p95"],
        }
        return build_record(
            "serve",
            config=dict(config or {}),
            metrics=metrics,
            duration_s=stats["uptime_s"],
            extra={"stats": stats},
        )

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _error_body(error_type: str, exc: Exception) -> dict:
    """The documented error envelope (see docs/serving.md)."""
    return {"error": {"type": error_type, "message": str(exc)}}

"""Minimal asyncio HTTP/1.1 front end for the scheduling service.

Zero-dependency by design: the container bakes in numpy and the
standard library only, so the transport is ``asyncio.start_server``
plus a small, strict HTTP/1.1 reader — enough for JSON request/response
bodies, not a general web server.  Connections are ``Connection:
close`` (one request per connection): the load harness and smoke
clients open cheap short-lived connections, and closing eagerly keeps
the shutdown path trivially clean.

Routes
------
======  ==================  ==========================================
GET     ``/healthz``        liveness probe (version, uptime)
GET     ``/v1/stats``       :meth:`SchedulingService.stats` snapshot
POST    ``/v1/schedule``    full ``repro-serve-request/1`` payload
POST    ``/v1/map``         same, with ``kind`` defaulted to ``map``
POST    ``/v1/iterate``     same, with ``kind`` defaulted to ``iterate``
POST    ``/v1/study``       same, with ``kind`` defaulted to ``study``
======  ==================  ==========================================

Error catalogue (all bodies ``{"error": {"type", "message"}}``):

* 400 ``validation`` / ``invalid_json`` — malformed payload;
* 404 ``not_found`` / 405 ``method_not_allowed`` — routing;
* 413 ``payload_too_large`` — body over :data:`MAX_BODY_BYTES`;
* 500 ``execution`` — the computation itself failed;
* 503 ``overload`` — admission cap reached (shed, retry later).
"""

from __future__ import annotations

import asyncio
import json

from repro.serve.service import SchedulingService

__all__ = [
    "MAX_BODY_BYTES",
    "handle_connection",
    "start_server",
]

#: Request-body ceiling; a 1024x64 inline ETC in JSON is ~1.5 MB, so
#: 8 MiB leaves headroom without letting one request buffer the world.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Header-section ceiling (request line + headers).
_MAX_HEADER_BYTES = 64 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: POST aliases that pre-fill the request ``kind``.
_KIND_ROUTES = {
    "/v1/schedule": None,
    "/v1/map": "map",
    "/v1/iterate": "iterate",
    "/v1/study": "study",
}


def _error(error_type: str, message: str) -> dict:
    return {"error": {"type": error_type, "message": message}}


def _encode_response(status: int, body: dict) -> bytes:
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + payload


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request → ``(method, path, body)`` or an error tuple.

    Returns ``(None, None, (status, body))`` when the request is
    malformed at the HTTP level, so the caller can answer and close.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.LimitOverrunError:
        return None, None, (413, _error("payload_too_large", "headers too large"))
    except (asyncio.IncompleteReadError, ConnectionError):
        return None, None, None  # client went away; nothing to answer
    if len(head) > _MAX_HEADER_BYTES:
        return None, None, (413, _error("payload_too_large", "headers too large"))
    try:
        lines = head.decode("ascii").split("\r\n")
        method, path, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        return None, None, (400, _error("invalid_request", "malformed request line"))
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        return None, None, (400, _error("invalid_request", "bad Content-Length"))
    if length > MAX_BODY_BYTES:
        return None, None, (
            413,
            _error(
                "payload_too_large",
                f"request body {length} bytes exceeds {MAX_BODY_BYTES}",
            ),
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None, None, None
    # Query strings carry nothing here; strip them for routing.
    path = path.split("?", 1)[0]
    return method, path, body


async def _route(service: SchedulingService, method: str, path: str,
                 body: bytes) -> tuple[int, dict]:
    if path == "/healthz":
        if method != "GET":
            return 405, _error("method_not_allowed", f"{method} {path}")
        from repro import __version__

        return 200, {"status": "ok", "version": __version__}
    if path == "/v1/stats":
        if method != "GET":
            return 405, _error("method_not_allowed", f"{method} {path}")
        return 200, service.stats()
    if path in _KIND_ROUTES:
        if method != "POST":
            return 405, _error("method_not_allowed", f"{method} {path}")
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, _error("invalid_json", f"request body is not JSON: {exc}")
        kind = _KIND_ROUTES[path]
        if kind is not None and isinstance(payload, dict):
            conflicting = payload.get("kind", kind)
            if conflicting != kind:
                return 400, _error(
                    "validation",
                    f"{path} serves kind {kind!r}, payload says "
                    f"{conflicting!r}",
                )
            payload = {**payload, "kind": kind}
        return await service.handle(payload)
    return 404, _error("not_found", f"no route for {path}")


async def handle_connection(
    service: SchedulingService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one connection: one request, one response, close."""
    try:
        method, path, body = await _read_request(reader)
        if method is None:
            if body is not None:  # HTTP-level error to report
                status, error_body = body
                writer.write(_encode_response(status, error_body))
                await writer.drain()
            return
        status, response = await _route(service, method, path, body)
        writer.write(_encode_response(status, response))
        await writer.drain()
    except ConnectionError:
        pass  # client hung up mid-response; nothing to do
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def start_server(
    service: SchedulingService,
    host: str = "127.0.0.1",
    port: int = 0,
) -> asyncio.AbstractServer:
    """Bind and return the listening server (``port=0`` = ephemeral).

    The caller owns the lifecycle: read the bound port off
    ``server.sockets[0].getsockname()[1]``, then ``server.close()`` +
    ``await server.wait_closed()`` to stop accepting.
    """

    async def _handler(reader, writer):
        await handle_connection(service, reader, writer)

    return await asyncio.start_server(
        _handler, host, port, limit=_MAX_HEADER_BYTES
    )

"""Content-addressed response cache for the scheduling service.

Mirrors the runner's cell cache (:class:`repro.analysis.runner.CellCache`)
byte for byte in its guarantees: one ``<key>.json`` entry per request
identity under a single directory (default ``.repro/responses/``),
written atomically (temp file + ``os.replace`` in the same directory),
so a killed service never leaves a torn entry and concurrent writers of
the *same* key race benignly — last replace wins with an identical
payload, since the key is a content address of everything that
determines the result.

Entries store the **full** computed result regardless of the request's
``trace`` verbosity; the service strips presentation-only sections at
serve time, so one cached computation answers every verbosity of the
same scheduling problem.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.exceptions import ConfigurationError

__all__ = [
    "RESPONSE_CACHE_SCHEMA",
    "DEFAULT_RESPONSE_CACHE_DIR",
    "ResponseCache",
]

#: Cache entry format identifier; bump when the JSON layout changes.
RESPONSE_CACHE_SCHEMA = "repro-serve-cache/1"

#: Default response cache location, next to the cell cache under ``.repro/``.
DEFAULT_RESPONSE_CACHE_DIR = ".repro/responses"


class ResponseCache:
    """Content-addressed response store under one directory."""

    def __init__(self, root: str | Path = DEFAULT_RESPONSE_CACHE_DIR) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _atomic_write(self, path: Path, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def store(self, key: str, identity: dict, result: dict) -> Path:
        """Persist one computed response; returns the entry path.

        ``identity`` (the :func:`~repro.serve.models.request_identity`
        dict) rides along for auditability — a cache directory is
        self-describing without the requests that filled it.
        """
        payload = {
            "schema": RESPONSE_CACHE_SCHEMA,
            "key": key,
            "identity": identity,
            "result": result,
        }
        path = self.path_for(key)
        self._atomic_write(path, payload)
        return path

    def load(self, key: str) -> dict | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        path = self.path_for(key)
        if not path.is_file():
            return None
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError) as exc:
            raise ConfigurationError(
                f"unreadable response cache entry {path} ({exc}); "
                "delete it to recompute"
            ) from None
        if (
            payload.get("schema") != RESPONSE_CACHE_SCHEMA
            or payload.get("key") != key
        ):
            raise ConfigurationError(
                f"{path}: not a {RESPONSE_CACHE_SCHEMA} entry for key "
                f"{key[:12]}…; delete it to recompute"
            )
        return payload["result"]

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return len(list(self.root.glob("*.json"))) if self.root.is_dir() else 0

    def __repr__(self) -> str:
        return f"ResponseCache({str(self.root)!r})"

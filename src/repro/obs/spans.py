"""Hierarchical spans: cross-process trace identity and span trees.

A *span* is a timed region of work with a parent, so a whole run —
parent grid orchestration, store publish, per-cell worker compute,
iterative kernel phases — forms one tree per trace.  Spans complement
the existing event stream: events stay deterministic and
byte-comparable (no wall-clock), while spans carry the wall-clock
intervals the timeline view needs.  :class:`~repro.obs.tracer.CollectingTracer`
records spans for every ``span(...)`` region and for the new
event-free ``phase(...)`` regions.

Cross-process identity travels as a :class:`SpanContext` — a tiny
picklable ``(trace_id, span_id)`` pair shipped to shard workers next
to the ``(config, store_root)`` payloads.  A worker tracer built from
a context *adopts* it: the worker's root spans carry the parent's
trace id and point at the parent span, so merging the worker snapshots
back (in deterministic cell order) yields a single trace tree.

Span ids are ``<prefix>:<seq>`` where ``prefix`` is unique per tracer
instance, so ids never collide across workers and merges need no
rewriting.  Tree *structure* (kinds, fields, parent/child shape) is
deterministic across serial and sharded runs; ids and wall-clock
values are not, which is why :func:`tree_shape` exists — it is the
comparable fingerprint the property suite asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SpanRecord",
    "SpanContext",
    "SpanNode",
    "span_to_dict",
    "span_from_dict",
    "spans_from_records",
    "build_span_tree",
    "tree_shape",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span.

    ``seq`` is the *enter* order within the recording tracer (children
    therefore have larger seqs than their parents even though they
    finish first); merges re-sequence incoming spans so the invariant
    holds for the merged tree too.  ``start_unix`` is ``time.time()``
    at enter (a cross-process-comparable axis for the timeline);
    ``duration_s`` is measured with ``time.perf_counter`` so the
    interval itself is monotonic.
    """

    seq: int
    span_id: str
    parent_id: str | None
    trace_id: str
    kind: str
    fields: dict
    start_unix: float
    duration_s: float

    @property
    def end_unix(self) -> float:
        return self.start_unix + self.duration_s


@dataclass(frozen=True)
class SpanContext:
    """Picklable cross-process span identity: ``(trace_id, span_id)``.

    Costs a few dozen bytes on the wire; a worker
    :class:`~repro.obs.tracer.CollectingTracer` built with
    ``context=...`` adopts the trace id and parents its root spans
    under ``span_id``.
    """

    trace_id: str
    span_id: str | None = None


def span_to_dict(span: SpanRecord) -> dict:
    """Plain-dict form of one span (the JSONL ``"span"`` record body)."""
    return {
        "seq": span.seq,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "trace_id": span.trace_id,
        "kind": span.kind,
        "fields": dict(span.fields),
        "start_unix": span.start_unix,
        "duration_s": span.duration_s,
    }


def span_from_dict(record: dict) -> SpanRecord:
    """Inverse of :func:`span_to_dict` (tolerates the ``"type"`` key)."""
    return SpanRecord(
        seq=int(record["seq"]),
        span_id=record["span_id"],
        parent_id=record["parent_id"],
        trace_id=record["trace_id"],
        kind=record["kind"],
        fields=dict(record["fields"]),
        start_unix=float(record["start_unix"]),
        duration_s=float(record["duration_s"]),
    )


def spans_from_records(records) -> list[SpanRecord]:
    """The span records of an exported obs JSONL stream, in seq order."""
    spans = [
        span_from_dict(record)
        for record in records
        if isinstance(record, dict) and record.get("type") == "span"
    ]
    spans.sort(key=lambda span: span.seq)
    return spans


@dataclass
class SpanNode:
    """One node of a reconstructed span tree."""

    span: SpanRecord
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return self.span.kind

    def walk(self, depth: int = 0):
        """Yield ``(depth, node)`` pairs in depth-first (seq) order."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)


def build_span_tree(spans) -> list[SpanNode]:
    """Reconstruct the span forest: roots in seq order, children too.

    A span whose ``parent_id`` does not appear in ``spans`` (for
    example the adopted parent lives in another process's snapshot)
    becomes a root — the tree is always buildable from a partial
    record set.
    """
    ordered = sorted(spans, key=lambda span: span.seq)
    nodes = {span.span_id: SpanNode(span) for span in ordered}
    roots: list[SpanNode] = []
    for span in ordered:
        node = nodes[span.span_id]
        parent = nodes.get(span.parent_id) if span.parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def _shape(node: SpanNode) -> tuple:
    fields = tuple(sorted((key, repr(value)) for key, value in node.span.fields.items()))
    return (node.span.kind, fields, tuple(_shape(child) for child in node.children))


def tree_shape(spans) -> tuple:
    """Wall-clock-free structural fingerprint of a span forest.

    Two runs that did the same work in the same deterministic order —
    e.g. a serial and a sharded grid over the same config — produce
    equal shapes even though span ids, trace ids and durations differ.
    """
    return tuple(_shape(root) for root in build_span_tree(spans))

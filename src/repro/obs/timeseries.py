"""Periodic time-series sampling (`repro-timeseries/1` JSONL).

Spans answer *where one run's time went*; the time-series answers *how
the run moved* — throughput, cache effectiveness, memory — sampled on
a wall-clock cadence while the run is still going, so a long `run-grid`
session can be watched (and later plotted) without waiting for the
final trace.

Schema ``repro-timeseries/1``, one JSON object per line:

* first line — ``{"type": "header", "schema": "repro-timeseries/1",
  "started_unix": float, "label": str}``
* then samples — ``{"type": "sample", "t_s": float, "metrics":
  {name: number}}`` with ``t_s`` seconds since the header's start
  (monotonic clock, strictly non-decreasing).

The grid sampler emits ``tasks_scheduled`` / ``tasks_per_s`` (the
ROADMAP's headline throughput trajectory), ``cells_done`` /
``cells_per_s``, ``cache_hit_rate``, ``store_published`` /
``store_reused``, ``rss_bytes`` and ``queue_depth`` (in-flight pool
work units).  Lines are appended and flushed as the run progresses, so
the file is live-tailable; :func:`read_timeseries` parses (and
validates) a finished or in-progress file.

Everything here writes to its own file only — the sampler never
touches the tracer, so enabling it cannot perturb an event stream or
a merged snapshot (same contract as the progress reporter).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.exceptions import ConfigurationError

__all__ = [
    "TIMESERIES_SCHEMA",
    "TimeSeriesLog",
    "read_timeseries",
    "rss_bytes",
    "GridSampler",
]

TIMESERIES_SCHEMA = "repro-timeseries/1"


def rss_bytes() -> int:
    """Current resident set size of this process, in bytes.

    Reads ``/proc/self/statm`` where available (Linux; true current
    RSS) and falls back to ``ru_maxrss`` (peak RSS) elsewhere.  Returns
    0 when neither source works — a missing gauge, never a crash.
    """
    try:
        fields = Path("/proc/self/statm").read_text().split()
        import resource

        return int(fields[1]) * resource.getpagesize()
    except (OSError, IndexError, ValueError, ImportError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - platform without getrusage
        return 0


class TimeSeriesLog:
    """Append-only writer of one ``repro-timeseries/1`` file.

    The header is written on construction; each :meth:`sample` call
    appends one flushed line, so a concurrent reader (``tail -f``, a
    plotting notebook) always sees complete records.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        label: str = "",
        clock=time.perf_counter,
    ) -> None:
        self.path = Path(path)
        self._clock = clock
        self._start = clock()
        self._last_t = 0.0
        self.samples_written = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("w", encoding="utf-8")
        header = {
            "type": "header",
            "schema": TIMESERIES_SCHEMA,
            "started_unix": time.time(),
            "label": label,
        }
        self._write(header)

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def sample(self, metrics: dict) -> float:
        """Append one sample; returns the recorded ``t_s``."""
        t = max(self.elapsed(), self._last_t)
        self._last_t = t
        self._write({"type": "sample", "t_s": t, "metrics": dict(metrics)})
        self.samples_written += 1
        return t

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TimeSeriesLog":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


def read_timeseries(path: str | Path) -> tuple[dict, list[dict]]:
    """Parse one file back into ``(header, samples)``.

    Raises :class:`~repro.exceptions.ConfigurationError` on a missing
    header, a wrong schema, or an unknown record type — the same
    fail-loudly posture as the ledger reader.
    """
    header: dict | None = None
    samples: list[dict] = []
    for number, line in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{number}: not valid JSON: {exc}"
            ) from exc
        kind = record.get("type")
        if kind == "header":
            if record.get("schema") != TIMESERIES_SCHEMA:
                raise ConfigurationError(
                    f"{path}: unsupported schema {record.get('schema')!r} "
                    f"(expected {TIMESERIES_SCHEMA!r})"
                )
            header = record
        elif kind == "sample":
            if header is None:
                raise ConfigurationError(f"{path}: sample before header")
            samples.append(record)
        else:
            raise ConfigurationError(
                f"{path}:{number}: unknown record type {kind!r}"
            )
    if header is None:
        raise ConfigurationError(f"{path}: missing repro-timeseries/1 header")
    return header, samples


class GridSampler:
    """Throttled per-run sampler the grid runner feeds as cells finish.

    Call :meth:`note_cell` once per completed cell and
    :meth:`set_queue_depth` as pool occupancy changes; a sample line is
    written at most every ``interval_s`` seconds (plus one forced final
    sample on :meth:`close`, so short runs still record their totals).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        total_cells: int,
        tasks_per_record: int,
        label: str = "",
        interval_s: float = 0.5,
        clock=time.perf_counter,
        rss_fn=rss_bytes,
    ) -> None:
        if interval_s < 0:
            raise ConfigurationError(
                f"sample interval must be >= 0, got {interval_s}"
            )
        self.log = TimeSeriesLog(path, label=label, clock=clock)
        self.total_cells = total_cells
        self.tasks_per_record = tasks_per_record
        self.interval_s = interval_s
        self._clock = clock
        self._rss_fn = rss_fn
        self._last_sample: float | None = None
        self.tasks_scheduled = 0
        self.cells_done = 0
        self.cells_cached = 0
        self.cells_quarantined = 0
        self.store_published = 0
        self.store_reused = 0
        self.queue_depth = 0

    def note_cell(
        self, *, records: int = 0, cached: bool = False, quarantined: bool = False
    ) -> None:
        """Account one finished cell (``records`` result rows)."""
        self.cells_done += 1
        if cached:
            self.cells_cached += 1
        if quarantined:
            self.cells_quarantined += 1
        self.tasks_scheduled += records * self.tasks_per_record
        self._maybe_sample()

    def note_store(self, *, published: int = 0, reused: int = 0) -> None:
        self.store_published += published
        self.store_reused += reused
        self._maybe_sample()

    def set_queue_depth(self, depth: int) -> None:
        self.queue_depth = depth
        self._maybe_sample()

    def metrics(self) -> dict:
        elapsed = self.log.elapsed()
        rate = 1.0 / elapsed if elapsed > 0 else 0.0
        return {
            "tasks_scheduled": self.tasks_scheduled,
            "tasks_per_s": self.tasks_scheduled * rate,
            "cells_done": self.cells_done,
            "cells_total": self.total_cells,
            "cells_per_s": self.cells_done * rate,
            "cache_hit_rate": (
                self.cells_cached / self.cells_done if self.cells_done else 0.0
            ),
            "store_published": self.store_published,
            "store_reused": self.store_reused,
            "rss_bytes": self._rss_fn(),
            "queue_depth": self.queue_depth,
        }

    def _maybe_sample(self, force: bool = False) -> None:
        now = self._clock()
        if (
            not force
            and self._last_sample is not None
            and now - self._last_sample < self.interval_s
        ):
            return
        self._last_sample = now
        self.log.sample(self.metrics())

    def summary(self) -> dict:
        """Headline numbers for the run ledger entry."""
        metrics = self.metrics()
        return {
            "schema": TIMESERIES_SCHEMA,
            "path": str(self.log.path),
            "samples": self.log.samples_written,
            "duration_s": self.log.elapsed(),
            "tasks_scheduled": metrics["tasks_scheduled"],
            "tasks_per_s": metrics["tasks_per_s"],
            "cells_per_s": metrics["cells_per_s"],
            "cache_hit_rate": metrics["cache_hit_rate"],
        }

    def close(self) -> None:
        """Force a final sample and close the file (idempotent)."""
        if self.log._handle is not None:
            self._maybe_sample(force=True)
            self.log.close()

"""Append-only run ledger: longitudinal records of experiment runs.

The paper's claims are statistical, so a trustworthy reproduction needs
*longitudinal* evidence — how makespan and non-makespan completion-time
metrics move across runs, commits and machines — not just the in-process
trace of one run.  The ledger is the durable half of ``repro.obs``:
every ``repro bench`` / ``study`` / ``compare`` / ``export`` / ``report``
invocation (under ``--append-ledger``) appends one fingerprinted JSONL
record to ``.repro/ledger.jsonl``.

Schema ``repro-ledger/1`` — one JSON object per line:

* ``schema`` — ``"repro-ledger/1"``;
* ``run_id`` — 12 hex chars, content hash of the record (stable:
  re-serialising a record re-derives the same id);
* ``command`` — the subcommand that produced the record;
* ``timestamp`` — ISO-8601 UTC wall-clock time;
* ``duration_s`` — wall-clock runtime of the command body;
* ``seed`` — the master RNG seed (``None`` for unseeded commands);
* ``fingerprint`` — git SHA (``None`` outside a repo), package
  version, python/numpy versions, platform and machine;
* ``config`` / ``config_hash`` — the JSON-able invocation config and
  the SHA-256 of its canonical serialisation;
* ``metrics`` — flat ``{name: number}`` headline metrics (makespan
  means, non-makespan completion-time deltas, bench timings …);
* ``counters`` — obs counter totals, when a tracer was active;
* ``extra`` — command-specific payloads (e.g. the full
  ``repro-bench/1`` report under ``extra["bench_report"]``).

Append-only by construction: :meth:`RunLedger.append` opens the file in
``"a"`` mode and writes exactly one line; nothing in this module ever
rewrites or truncates an existing ledger.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import time
from collections.abc import Iterable, Sequence
from datetime import datetime, timezone
from pathlib import Path

from repro.exceptions import ConfigurationError

__all__ = [
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "RunLedger",
    "fingerprint",
    "config_hash",
    "build_record",
    "headline_metrics",
    "format_record_line",
    "summarize_records",
    "diff_records",
    "is_lower_better",
    "collect_counters",
    "histogram_summaries",
    "follow_records",
]

#: Ledger format identifier; bump when the record layout changes.
LEDGER_SCHEMA = "repro-ledger/1"

#: Default ledger location, relative to the working directory.
DEFAULT_LEDGER_PATH = ".repro/ledger.jsonl"


def _git_sha() -> str | None:
    """HEAD commit SHA, or ``None`` when git/repo is unavailable."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def fingerprint() -> dict:
    """Environment fingerprint embedded in every ledger record."""
    import numpy as np

    from repro import __version__

    return {
        "git_sha": _git_sha(),
        "version": __version__,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
    }


def config_hash(config) -> str:
    """SHA-256 hex digest of a config's canonical JSON serialisation."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _derive_run_id(record: dict) -> str:
    """Content hash (12 hex chars) over everything except ``run_id``."""
    body = {k: v for k, v in record.items() if k != "run_id"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def build_record(
    command: str,
    *,
    seed: int | None = None,
    config: dict | None = None,
    metrics: dict | None = None,
    counters: dict | None = None,
    duration_s: float | None = None,
    extra: dict | None = None,
    timestamp: str | None = None,
) -> dict:
    """Assemble one ``repro-ledger/1`` record (with derived ``run_id``).

    ``metrics`` must be a flat name → number mapping; ``config`` any
    JSON-able dict.  ``timestamp`` is injectable for tests; it defaults
    to the current UTC time.
    """
    if timestamp is None:
        timestamp = datetime.now(timezone.utc).isoformat(timespec="microseconds")
    config = dict(config or {})
    record = {
        "schema": LEDGER_SCHEMA,
        "command": command,
        "timestamp": timestamp,
        "duration_s": duration_s,
        "seed": seed,
        "fingerprint": fingerprint(),
        "config": config,
        "config_hash": config_hash(config),
        "metrics": dict(metrics or {}),
        "counters": dict(counters or {}),
        "extra": dict(extra or {}),
    }
    record["run_id"] = _derive_run_id(record)
    return record


class RunLedger:
    """One append-only JSONL ledger file.

    The file (and its parent directory) is created lazily on the first
    append; reading a missing ledger returns an empty list rather than
    raising, so ``repro obs summary`` degrades gracefully on a fresh
    checkout.
    """

    def __init__(self, path: str | Path = DEFAULT_LEDGER_PATH) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    def append(self, record: dict) -> dict:
        """Write one record as a single JSONL line; returns the record.

        Records missing ``schema``/``run_id`` (i.e. not built by
        :func:`build_record`) are rejected instead of silently writing
        unreadable lines.
        """
        if record.get("schema") != LEDGER_SCHEMA:
            raise ConfigurationError(
                f"refusing to append non-{LEDGER_SCHEMA} record "
                f"(schema={record.get('schema')!r})"
            )
        if not record.get("run_id"):
            raise ConfigurationError("record has no run_id; use build_record()")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        return record

    def read(self) -> list[dict]:
        """All records in append order (empty when the file is absent).

        Unparseable or wrong-schema lines raise: a corrupt ledger should
        fail loudly, not silently drop history.
        """
        if not self.path.is_file():
            return []
        records = []
        for lineno, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{self.path}:{lineno}: unparseable ledger line ({exc})"
                ) from None
            if record.get("schema") != LEDGER_SCHEMA:
                raise ConfigurationError(
                    f"{self.path}:{lineno}: not a {LEDGER_SCHEMA} record "
                    f"(schema={record.get('schema')!r})"
                )
            records.append(record)
        return records

    def tail(self, n: int = 10) -> list[dict]:
        """The last ``n`` records in append order."""
        if n < 1:
            raise ConfigurationError(f"tail count must be >= 1, got {n}")
        return self.read()[-n:]

    def find(self, ref: str) -> dict:
        """Resolve one record by reference.

        ``ref`` is either a ``run_id`` prefix (at least 4 hex chars) or
        a negative index like ``-1`` (the most recent record) / ``-2``.
        Ambiguous prefixes and missing records raise.
        """
        records = self.read()
        if not records:
            raise ConfigurationError(f"ledger {self.path} is empty")
        if ref.lstrip("-").isdigit() and ref.startswith("-"):
            index = int(ref)
            if not -len(records) <= index <= -1:
                raise ConfigurationError(
                    f"index {ref} out of range; ledger has {len(records)} records"
                )
            return records[index]
        if len(ref) < 4:
            raise ConfigurationError(
                f"run_id prefix {ref!r} too short (need >= 4 characters)"
            )
        matches = [r for r in records if r["run_id"].startswith(ref)]
        if not matches:
            raise ConfigurationError(f"no ledger record matches {ref!r}")
        distinct = {r["run_id"] for r in matches}
        if len(distinct) > 1:
            raise ConfigurationError(
                f"run_id prefix {ref!r} is ambiguous: {sorted(distinct)}"
            )
        return matches[-1]

    def __len__(self) -> int:
        return len(self.read())

    def __iter__(self):
        return iter(self.read())

    def __repr__(self) -> str:
        return f"RunLedger({str(self.path)!r})"


def headline_metrics(record: dict) -> dict[str, float]:
    """The flat numeric metrics of one record (non-numeric filtered)."""
    return {
        name: value
        for name, value in record.get("metrics", {}).items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }


def format_record_line(record: dict) -> str:
    """One-line rendering for ``repro obs tail``."""
    fp = record.get("fingerprint", {})
    sha = (fp.get("git_sha") or "-")[:8]
    metrics = headline_metrics(record)
    shown = ", ".join(
        f"{name}={value:.6g}" for name, value in sorted(metrics.items())[:3]
    )
    more = f" (+{len(metrics) - 3} more)" if len(metrics) > 3 else ""
    duration = record.get("duration_s")
    dur = f"{duration:.2f}s" if isinstance(duration, (int, float)) else "-"
    return (
        f"{record['run_id']}  {record['timestamp'][:19]}  "
        f"{record['command']:<8} git={sha:<8} seed={record.get('seed')!s:<5} "
        f"{dur:>8}  {shown}{more}"
    )


def summarize_records(records: Sequence[dict]) -> str:
    """Multi-line summary for ``repro obs summary``.

    Groups records by command, and for each metric seen in the latest
    record of a command shows first/last values across that command's
    history — the longitudinal trend at a glance.
    """
    if not records:
        return "ledger is empty (run e.g. `repro bench --append-ledger`)"
    lines = [
        f"{len(records)} ledger record(s), "
        f"{records[0]['timestamp'][:19]} .. {records[-1]['timestamp'][:19]}"
    ]
    commands = sorted({r["command"] for r in records})
    for command in commands:
        sel = [r for r in records if r["command"] == command]
        lines.append("")
        lines.append(f"{command}: {len(sel)} run(s)")
        latest = headline_metrics(sel[-1])
        for name in sorted(latest):
            series = [
                headline_metrics(r)[name] for r in sel if name in headline_metrics(r)
            ]
            first, last = series[0], series[-1]
            if len(series) == 1:
                trend = ""
            elif first:
                trend = f"  ({(last - first) / abs(first):+.1%} vs first)"
            else:
                trend = f"  (first {first:.6g})"
            lines.append(f"  {name:<44} {last:>14.6g}{trend}")
    return "\n".join(lines)


#: Metric-name fragments that mark a metric as higher-is-better; all
#: other metrics are treated as lower-is-better (makespans, completion
#: times, rates of bad outcomes, wall-clock ``*_s`` timings).
_HIGHER_BETTER = ("speedup", "improved", "improvement")


def is_lower_better(name: str) -> bool:
    """Regression direction for one metric name (see module docs)."""
    return not any(fragment in name for fragment in _HIGHER_BETTER)


def diff_records(
    a: dict,
    b: dict,
    *,
    tolerance: float = 0.05,
) -> tuple[list[str], list[str]]:
    """Compare the metrics of two ledger records (``a`` → ``b``).

    Returns ``(lines, regressions)``: a rendered delta table over the
    shared metrics, and the subset of makespan-style (lower-is-better)
    metrics that got worse by more than ``tolerance`` (relative).
    Higher-is-better metrics (speedups, improvement rates) regress by
    *dropping* beyond tolerance instead.
    """
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance}")
    metrics_a = headline_metrics(a)
    metrics_b = headline_metrics(b)
    shared = sorted(set(metrics_a) & set(metrics_b))
    lines = [
        f"diff {a['run_id']} ({a['timestamp'][:19]}) -> "
        f"{b['run_id']} ({b['timestamp'][:19]})  [{a['command']}]",
        f"{'metric':<44} {'a':>14} {'b':>14} {'delta':>10}",
    ]
    if a.get("command") != b.get("command"):
        lines.insert(
            1,
            f"note: comparing different commands "
            f"({a.get('command')} vs {b.get('command')})",
        )
    regressions: list[str] = []
    for name in shared:
        va, vb = metrics_a[name], metrics_b[name]
        if va:
            rel = (vb - va) / abs(va)
            delta = f"{rel:+.1%}"
        else:
            rel = 0.0 if vb == va else float("inf")
            delta = f"{vb - va:+.6g}"
        worse = rel > tolerance if is_lower_better(name) else rel < -tolerance
        marker = "  REGRESSION" if worse else ""
        lines.append(f"{name:<44} {va:>14.6g} {vb:>14.6g} {delta:>10}{marker}")
        if worse:
            regressions.append(
                f"{name}: {va:.6g} -> {vb:.6g} ({delta}, tolerance "
                f"{tolerance:.0%}, {'lower' if is_lower_better(name) else 'higher'}"
                f"-is-better)"
            )
    only_a = sorted(set(metrics_a) - set(metrics_b))
    only_b = sorted(set(metrics_b) - set(metrics_a))
    if only_a:
        lines.append(f"only in {a['run_id']}: {', '.join(only_a)}")
    if only_b:
        lines.append(f"only in {b['run_id']}: {', '.join(only_b)}")
    return lines, regressions


def histogram_summaries(histograms) -> dict[str, dict[str, float]]:
    """Flatten tracer histograms for a ledger record's ``extra``.

    Takes the ``{name: HistogramStat}`` mapping of an
    :class:`~repro.obs.tracer.ObsSnapshot` and keeps only the JSON-able
    aggregate (count / sum / mean / min / max plus the bucket-estimated
    p50 / p95) per histogram — bucket vectors stay in trace exports,
    the ledger records the headline shape.  Empty histograms (count 0)
    are dropped.
    """
    summaries: dict[str, dict[str, float]] = {}
    for name in sorted(histograms):
        stat = histograms[name]
        if stat.count == 0:
            continue
        summaries[name] = {
            "count": stat.count,
            "sum": stat.sum,
            "mean": stat.sum / stat.count,
            "min": stat.min,
            "max": stat.max,
            "p50": stat.quantile(0.5),
            "p95": stat.quantile(0.95),
        }
    return summaries


def collect_counters(records: Iterable[dict]) -> dict[str, int]:
    """Summed obs counter totals across records (for ``obs summary``)."""
    totals: dict[str, int] = {}
    for record in records:
        for name, value in record.get("counters", {}).items():
            if isinstance(value, int):
                totals[name] = totals.get(name, 0) + value
    return totals


def follow_records(
    ledger: RunLedger,
    emit,
    *,
    interval_s: float = 2.0,
    max_polls: int | None = None,
    sleep=time.sleep,
) -> int:
    """Poll ``ledger`` and call ``emit(record)`` for every new record.

    The poll loop behind ``repro obs tail --follow``: it remembers how
    many records it has seen and, every ``interval_s`` seconds, emits
    exactly the records appended since — a missing ledger file simply
    means "nothing yet", so following can start before the first run
    lands.  Runs until interrupted, or for ``max_polls`` polls when
    given (the testable bound); returns the number of records emitted.
    """
    if interval_s <= 0:
        raise ConfigurationError(
            f"follow interval must be > 0, got {interval_s}"
        )
    if max_polls is not None and max_polls < 1:
        raise ConfigurationError(f"max_polls must be >= 1, got {max_polls}")
    seen = 0
    emitted = 0
    polls = 0
    while True:
        records = ledger.read() if ledger.exists() else []
        for record in records[seen:]:
            emit(record)
            emitted += 1
        seen = len(records)
        polls += 1
        if max_polls is not None and polls >= max_polls:
            return emitted
        sleep(interval_s)

"""Live progress reporting for long sweeps and simulations.

Long experiment grids and benches run silently today; this module adds
a small, dependency-free reporter that renders *outside* the event
stream — it writes only to a stream (stderr by default) and never
touches the tracer, so enabling progress cannot perturb a trace or a
merged snapshot (the byte-identity property the obs suite asserts).

Renders in-place (``\\r``) on TTYs and one line per update otherwise,
so redirected logs stay readable.  ``total=None`` degrades to a plain
item counter without percentage/ETA.

Usage::

    progress = ProgressReporter(total=len(cells), label="cells")
    progress.start()
    for cell in cells:
        ...
        progress.advance(cell_label)
    progress.finish()

:data:`NULL_PROGRESS` is the disabled no-op twin (same interface), so
call sites can take ``progress: ProgressReporter | None`` and normalise
with :func:`make_progress` instead of branching everywhere.
"""

from __future__ import annotations

import sys
import time

__all__ = ["ProgressReporter", "NullProgress", "NULL_PROGRESS", "make_progress"]


def _fmt_duration(seconds: float) -> str:
    """Compact ``M:SS`` / ``H:MM:SS`` rendering of a duration."""
    seconds = max(0, int(seconds))
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}:{minutes:02d}:{secs:02d}"
    return f"{minutes}:{secs:02d}"


class ProgressReporter:
    """Streaming ``[done/total] pct eta label`` reporter.

    ``min_interval_s`` throttles re-renders (0 disables throttling;
    the final update of :meth:`finish` always renders).  The clock is
    injectable for tests.
    """

    enabled = True

    def __init__(
        self,
        total: int | None = None,
        *,
        label: str = "",
        stream=None,
        min_interval_s: float = 0.0,
        clock=time.perf_counter,
    ) -> None:
        if total is not None and total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        self.total = total
        self.label = label
        self._stream = stream if stream is not None else sys.stderr
        self._min_interval_s = min_interval_s
        self._clock = clock
        self._started_at: float | None = None
        self._last_render_at: float | None = None
        self._finished = False
        self.done = 0

    # ------------------------------------------------------------------
    def start(self) -> "ProgressReporter":
        """Reset the clock and render the initial 0-progress line."""
        self._started_at = self._clock()
        self.done = 0
        self._last_render_at = None
        self._finished = False
        self._render(current="", force=True)
        return self

    def advance(self, current: str = "", n: int = 1) -> None:
        """Mark ``n`` more items done; ``current`` names the latest."""
        if self._started_at is None:
            self.start()
        self.done += n
        self._render(current=current)

    def finish(self) -> None:
        """Render the final state and terminate the in-place line.

        Idempotent: a second call (e.g. an explicit flush followed by
        the runner's unconditional ``finally``) is a no-op, so cleanup
        paths can always call it without double-printing.
        """
        if self._started_at is None or getattr(self, "_finished", False):
            return
        self._finished = True
        self._render(current="done", force=True)
        if self._isatty():
            self._stream.write("\n")
            self._stream.flush()

    # ------------------------------------------------------------------
    def _isatty(self) -> bool:
        isatty = getattr(self._stream, "isatty", None)
        try:
            return bool(isatty()) if isatty is not None else False
        except (ValueError, OSError):
            return False

    def _line(self, current: str) -> str:
        started = self._started_at if self._started_at is not None else self._clock()
        elapsed = self._clock() - started
        parts = []
        if self.total:
            width = len(str(self.total))
            parts.append(f"[{self.done:>{width}}/{self.total}]")
            parts.append(f"{100 * self.done / self.total:5.1f}%")
        else:
            parts.append(f"[{self.done}]")
        parts.append(f"elapsed {_fmt_duration(elapsed)}")
        if self.total and 0 < self.done < self.total:
            eta = elapsed / self.done * (self.total - self.done)
            parts.append(f"eta {_fmt_duration(eta)}")
        if self.label:
            parts.append(self.label)
        if current:
            parts.append(current)
        return " ".join(parts)

    def _render(self, current: str, force: bool = False) -> None:
        now = self._clock()
        if (
            not force
            and self._min_interval_s > 0
            and self._last_render_at is not None
            and now - self._last_render_at < self._min_interval_s
        ):
            return
        self._last_render_at = now
        line = self._line(current)
        if self._isatty():
            # Pad to clear leftovers of a longer previous line.
            self._stream.write("\r" + line.ljust(79))
        else:
            self._stream.write(line + "\n")
        self._stream.flush()


class NullProgress:
    """Disabled reporter: same surface as :class:`ProgressReporter`."""

    enabled = False
    total = None
    done = 0

    def start(self) -> "NullProgress":
        return self

    def advance(self, current: str = "", n: int = 1) -> None:
        pass

    def finish(self) -> None:
        pass

    def __repr__(self) -> str:
        return "NullProgress()"


#: Shared disabled reporter (stateless, safe to reuse everywhere).
NULL_PROGRESS = NullProgress()


def make_progress(
    enabled: bool,
    total: int | None = None,
    *,
    label: str = "",
    stream=None,
) -> "ProgressReporter | NullProgress":
    """A live reporter when ``enabled``, else :data:`NULL_PROGRESS`."""
    if not enabled:
        return NULL_PROGRESS
    return ProgressReporter(total, label=label, stream=stream)

"""Flamegraph-style rendering of a span tree (ASCII and HTML).

``repro obs timeline trace.jsonl`` feeds the span records of an
exported obs JSONL file (``run-grid --trace-out``) through
:func:`render_timeline`: one row per span in depth-first order, the
bar positioned on a shared wall-clock axis scaled to the trace extent,
indentation showing the parent/child nesting — publish, worker
attach, kernel batches and persist become visibly sequential or
overlapping at a glance.  :func:`render_timeline_html` emits the same
tree as a self-contained HTML page with hover titles.
"""

from __future__ import annotations

import html
from pathlib import Path

from repro.exceptions import ConfigurationError
from repro.obs.spans import SpanNode, build_span_tree

__all__ = [
    "render_timeline",
    "render_timeline_html",
    "write_timeline_html",
]

_BAR = "█"  # full block
_PAD = "·"  # middle dot


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}µs"


def _extent(roots: list[SpanNode]) -> tuple[float, float]:
    start = min(node.span.start_unix for _, node in _walk(roots))
    end = max(node.span.end_unix for _, node in _walk(roots))
    return start, max(end, start)


def _walk(roots: list[SpanNode]):
    for root in roots:
        yield from root.walk()


def render_timeline(spans, *, width: int = 100) -> str:
    """ASCII timeline of a span forest.

    ``width`` is the total line width budget; the bar area gets what is
    left after the label column.  Raises
    :class:`~repro.exceptions.ConfigurationError` when ``spans`` holds
    no span records — a trace exported without spans is a user error
    worth a loud message, not an empty chart.
    """
    spans = list(spans)
    if not spans:
        raise ConfigurationError(
            "no span records to render — export the trace with spans "
            "(run-grid --trace-out) or pass a file produced by write_jsonl "
            "of a collecting tracer"
        )
    if width < 40:
        raise ConfigurationError(f"timeline width must be >= 40, got {width}")
    roots = build_span_tree(spans)
    t0, t1 = _extent(roots)
    total = max(t1 - t0, 1e-9)

    rows = []
    label_width = 0
    for depth, node in _walk(roots):
        label = "  " * depth + node.span.kind
        label_width = max(label_width, len(label))
        rows.append((depth, node, label))
    label_width = min(label_width, max(20, width // 2))
    bar_width = max(10, width - label_width - 18)

    trace_id = roots[0].span.trace_id if roots else "?"
    lines = [
        f"trace {trace_id} — {len(rows)} span(s), "
        f"{_fmt_duration(total)} total",
        "",
    ]
    for _, node, label in rows:
        span = node.span
        begin = int((span.start_unix - t0) / total * bar_width)
        length = max(1, round(span.duration_s / total * bar_width))
        begin = min(begin, bar_width - 1)
        length = min(length, bar_width - begin)
        bar = _PAD * begin + _BAR * length + _PAD * (bar_width - begin - length)
        lines.append(
            f"{label:<{label_width}.{label_width}} "
            f"|{bar}| {_fmt_duration(span.duration_s):>8}"
        )
    return "\n".join(lines)


_HTML_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>repro trace timeline</title>
<style>
body {{ font-family: monospace; background: #1b1b1b; color: #ddd; margin: 1em; }}
.lane {{ position: relative; height: 22px; margin: 1px 0; }}
.lane .label {{ position: absolute; left: 0; width: 28em; overflow: hidden;
  white-space: nowrap; line-height: 22px; }}
.lane .track {{ position: absolute; left: 29em; right: 0; top: 2px; bottom: 2px;
  background: #262626; }}
.lane .bar {{ position: absolute; top: 0; bottom: 0; background: #4e8cff;
  min-width: 1px; border-radius: 2px; }}
.lane.depth1 .bar {{ background: #57b86a; }}
.lane.depth2 .bar {{ background: #d9a441; }}
.lane.depth3 .bar {{ background: #c95f5f; }}
</style></head><body>
<h3>trace {trace_id} &mdash; {count} span(s), {total}</h3>
{lanes}
</body></html>
"""

_HTML_LANE = (
    '<div class="lane depth{depth_class}">'
    '<span class="label" style="padding-left:{indent}em">{label}</span>'
    '<span class="track"><span class="bar" title="{title}" '
    'style="left:{left:.3f}%;width:{width:.3f}%"></span></span></div>'
)


def render_timeline_html(spans) -> str:
    """Self-contained HTML page for a span forest (hover for timings)."""
    spans = list(spans)
    if not spans:
        raise ConfigurationError("no span records to render")
    roots = build_span_tree(spans)
    t0, t1 = _extent(roots)
    total = max(t1 - t0, 1e-9)
    lanes = []
    for depth, node in _walk(roots):
        span = node.span
        title = (
            f"{span.kind} — {_fmt_duration(span.duration_s)} "
            f"(+{_fmt_duration(span.start_unix - t0)})"
        )
        lanes.append(
            _HTML_LANE.format(
                depth_class=min(depth, 3),
                indent=depth,
                label=html.escape(span.kind),
                title=html.escape(title),
                left=(span.start_unix - t0) / total * 100.0,
                width=max(span.duration_s / total * 100.0, 0.05),
            )
        )
    trace_id = roots[0].span.trace_id if roots else "?"
    return _HTML_PAGE.format(
        trace_id=html.escape(trace_id),
        count=len(spans),
        total=_fmt_duration(total),
        lanes="\n".join(lanes),
    )


def write_timeline_html(spans, path: str | Path) -> Path:
    """Render and write the HTML timeline; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_timeline_html(spans), encoding="utf-8")
    return path

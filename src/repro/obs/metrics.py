"""Monotonic, aggregatable counters and timers.

Both containers are plain-dict wrappers designed for the observability
pipeline's two constraints:

* **merge determinism** — worker processes return snapshots that the
  parent merges; counter merges are commutative sums, so the merged
  totals are independent of worker scheduling (the event *stream* is
  kept deterministic separately, by merging in cell order);
* **zero dependencies** — timing uses :func:`time.perf_counter`, the
  stdlib's monotonic high-resolution clock, so wall-clock adjustments
  can never produce negative durations.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Mapping as MappingABC
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = ["Counters", "TimerStat", "Timers"]


class Counters:
    """Named monotonic integer counters.

    Counters only ever increase (``inc`` rejects negative increments),
    so any merged total can be trusted as an event count.
    """

    __slots__ = ("_values",)

    def __init__(self, values: MappingABC[str, int] | None = None) -> None:
        self._values: dict[str, int] = {}
        if values is not None:
            for name, value in values.items():
                self.inc(name, value)

    def inc(self, name: str, n: int = 1) -> int:
        """Add ``n >= 0`` to ``name`` (created at 0); returns the new total."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        total = self._values.get(name, 0) + n
        self._values[name] = total
        return total

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._values.get(name, 0)

    def total(self, prefix: str = "") -> int:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(v for k, v in self._values.items() if k.startswith(prefix))

    def merge(self, other: "Counters | MappingABC[str, int]") -> None:
        """Add another counter set (or plain dict) into this one."""
        items = other._values if isinstance(other, Counters) else other
        for name, value in items.items():
            self.inc(name, value)

    def as_dict(self) -> dict[str, int]:
        """Name -> value, in sorted-name order (deterministic export)."""
        return {name: self._values[name] for name in sorted(self._values)}

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counters):
            return self._values == other._values
        if isinstance(other, MappingABC):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"


@dataclass(frozen=True)
class TimerStat:
    """Aggregate of one named timer: call count and total/min/max seconds."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def observe(self, seconds: float) -> "TimerStat":
        """Stat with one more observation folded in."""
        return TimerStat(
            count=self.count + 1,
            total=self.total + seconds,
            min=seconds if seconds < self.min else self.min,
            max=seconds if seconds > self.max else self.max,
        )

    def combine(self, other: "TimerStat") -> "TimerStat":
        return TimerStat(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Timers:
    """Named duration aggregates fed by a monotonic clock."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: dict[str, TimerStat] = {}

    def record(self, name: str, seconds: float) -> None:
        """Fold one measured duration (``>= 0``) into ``name``."""
        if seconds < 0:
            raise ValueError(f"duration must be >= 0, got {seconds}")
        self._stats[name] = self._stats.get(name, TimerStat()).observe(seconds)

    @contextmanager
    def time(self, name: str):
        """Context manager measuring its block with ``perf_counter``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def get(self, name: str) -> TimerStat:
        return self._stats.get(name, TimerStat())

    def merge(self, other: "Timers | MappingABC[str, TimerStat]") -> None:
        items = other._stats if isinstance(other, Timers) else other
        for name, stat in items.items():
            self._stats[name] = self._stats.get(name, TimerStat()).combine(stat)

    def as_dict(self) -> dict[str, TimerStat]:
        return {name: self._stats[name] for name in sorted(self._stats)}

    def __len__(self) -> int:
        return len(self._stats)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._stats))

    def __repr__(self) -> str:
        return f"Timers({self.as_dict()!r})"

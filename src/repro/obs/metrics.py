"""Monotonic, aggregatable counters and timers.

Both containers are plain-dict wrappers designed for the observability
pipeline's two constraints:

* **merge determinism** — worker processes return snapshots that the
  parent merges; counter merges are commutative sums, so the merged
  totals are independent of worker scheduling (the event *stream* is
  kept deterministic separately, by merging in cell order);
* **zero dependencies** — timing uses :func:`time.perf_counter`, the
  stdlib's monotonic high-resolution clock, so wall-clock adjustments
  can never produce negative durations.
"""

from __future__ import annotations

import bisect
import time
from collections.abc import Iterator, Mapping as MappingABC
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "Counters",
    "TimerStat",
    "Timers",
    "HistogramStat",
    "Histograms",
    "Gauges",
    "DEFAULT_BUCKETS",
    "TIME_BUCKETS",
    "BYTE_BUCKETS",
]

#: Default histogram bucket upper bounds, tuned for small integer
#: distributions (tie-candidate counts, freeze depths, subset sizes).
#: Values land in the first bucket whose bound is >= the value; one
#: implicit overflow bucket catches everything beyond the last bound.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128,
)

#: Bucket bounds for wall-clock durations in seconds (10us .. 100s,
#: roughly half-decade steps).  By convention histogram *names* carrying
#: wall-clock values end in ``_s``; deterministic-merge assertions treat
#: them structurally (total counts) rather than byte-identically, since
#: timings differ across runs.
TIME_BUCKETS: tuple[float, ...] = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
    0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0,
)

#: Bucket bounds for payload sizes in bytes (64 B .. 4 GiB, powers of
#: four).  Used by the transport counters (``runner.ipc.*`` descriptor
#: sizes, ``store.*`` entry sizes) so the histogram shows at a glance
#: whether a run is shipping descriptors or payloads.
BYTE_BUCKETS: tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
    4194304, 16777216, 67108864, 268435456, 1073741824, 4294967296,
)


class Counters:
    """Named monotonic integer counters.

    Counters only ever increase (``inc`` rejects negative increments),
    so any merged total can be trusted as an event count.
    """

    __slots__ = ("_values",)

    def __init__(self, values: MappingABC[str, int] | None = None) -> None:
        self._values: dict[str, int] = {}
        if values is not None:
            for name, value in values.items():
                self.inc(name, value)

    def inc(self, name: str, n: int = 1) -> int:
        """Add ``n >= 0`` to ``name`` (created at 0); returns the new total."""
        if n < 0:
            raise ValueError(f"counter increment must be >= 0, got {n}")
        total = self._values.get(name, 0) + n
        self._values[name] = total
        return total

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._values.get(name, 0)

    def total(self, prefix: str = "") -> int:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(v for k, v in self._values.items() if k.startswith(prefix))

    def merge(self, other: "Counters | MappingABC[str, int]") -> None:
        """Add another counter set (or plain dict) into this one."""
        items = other._values if isinstance(other, Counters) else other
        for name, value in items.items():
            self.inc(name, value)

    def as_dict(self) -> dict[str, int]:
        """Name -> value, in sorted-name order (deterministic export)."""
        return {name: self._values[name] for name in sorted(self._values)}

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Counters):
            return self._values == other._values
        if isinstance(other, MappingABC):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Counters({self.as_dict()!r})"


@dataclass(frozen=True)
class TimerStat:
    """Aggregate of one named timer: call count and total/min/max seconds."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = 0.0

    def observe(self, seconds: float) -> "TimerStat":
        """Stat with one more observation folded in."""
        return TimerStat(
            count=self.count + 1,
            total=self.total + seconds,
            min=seconds if seconds < self.min else self.min,
            max=seconds if seconds > self.max else self.max,
        )

    def combine(self, other: "TimerStat") -> "TimerStat":
        return TimerStat(
            count=self.count + other.count,
            total=self.total + other.total,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Timers:
    """Named duration aggregates fed by a monotonic clock."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: dict[str, TimerStat] = {}

    def record(self, name: str, seconds: float) -> None:
        """Fold one measured duration (``>= 0``) into ``name``."""
        if seconds < 0:
            raise ValueError(f"duration must be >= 0, got {seconds}")
        self._stats[name] = self._stats.get(name, TimerStat()).observe(seconds)

    @contextmanager
    def time(self, name: str):
        """Context manager measuring its block with ``perf_counter``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def get(self, name: str) -> TimerStat:
        return self._stats.get(name, TimerStat())

    def merge(self, other: "Timers | MappingABC[str, TimerStat]") -> None:
        items = other._stats if isinstance(other, Timers) else other
        for name, stat in items.items():
            self._stats[name] = self._stats.get(name, TimerStat()).combine(stat)

    def as_dict(self) -> dict[str, TimerStat]:
        return {name: self._stats[name] for name in sorted(self._stats)}

    def __len__(self) -> int:
        return len(self._stats)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._stats))

    def __repr__(self) -> str:
        return f"Timers({self.as_dict()!r})"


@dataclass(frozen=True)
class HistogramStat:
    """Fixed-bucket histogram of one named distribution.

    ``buckets`` are sorted upper bounds; ``counts`` has one entry per
    bucket plus a trailing overflow bucket (``len(buckets) + 1``).  A
    value lands in the first bucket whose bound is ``>= value``.
    Merging requires identical bucket bounds, which keeps worker-merge
    results independent of how observations were partitioned — the same
    commutative-sum argument as :class:`Counters`.
    """

    buckets: tuple[float, ...]
    counts: tuple[int, ...]
    count: int = 0
    sum: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    @classmethod
    def empty(cls, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> "HistogramStat":
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(f"bucket bounds must strictly increase: {bounds}")
        return cls(buckets=bounds, counts=(0,) * (len(bounds) + 1))

    def _bucket_index(self, value: float) -> int:
        return bisect.bisect_left(self.buckets, value)

    def observe(self, value: float) -> "HistogramStat":
        """Stat with one more observation folded in."""
        idx = self._bucket_index(value)
        counts = list(self.counts)
        counts[idx] += 1
        return HistogramStat(
            buckets=self.buckets,
            counts=tuple(counts),
            count=self.count + 1,
            sum=self.sum + value,
            min=value if value < self.min else self.min,
            max=value if value > self.max else self.max,
        )

    def combine(self, other: "HistogramStat") -> "HistogramStat":
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets: "
                f"{self.buckets} vs {other.buckets}"
            )
        return HistogramStat(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=min(self.min, other.min),
            max=max(self.max, other.max),
        )

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the bucket counts.

        Walks the cumulative counts to the bucket holding the target
        rank and interpolates linearly within it; the estimate is
        clamped to the observed ``[min, max]`` so it never invents
        values outside the data, and the overflow bucket resolves to
        ``max``.  Returns ``0.0`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):  # overflow bucket
                    return self.max
                hi = self.buckets[index]
                lo = self.buckets[index - 1] if index else min(self.min, hi)
                fraction = (rank - previous) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max


class Histograms:
    """Named fixed-bucket histograms (merge-deterministic)."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: dict[str, HistogramStat] = {}

    def observe(
        self,
        name: str,
        value: float,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        """Fold one value into ``name``.

        Bucket bounds are fixed by the *first* observation of a name
        (``DEFAULT_BUCKETS`` unless given); later ``buckets`` arguments
        for the same name are ignored, so concurrent instrumentation
        sites cannot disagree about a histogram's shape mid-run.
        """
        stat = self._stats.get(name)
        if stat is None:
            stat = HistogramStat.empty(buckets if buckets is not None else DEFAULT_BUCKETS)
        self._stats[name] = stat.observe(value)

    def get(self, name: str) -> HistogramStat | None:
        return self._stats.get(name)

    def merge(self, other: "Histograms | MappingABC[str, HistogramStat]") -> None:
        items = other._stats if isinstance(other, Histograms) else other
        for name, stat in items.items():
            mine = self._stats.get(name)
            self._stats[name] = stat if mine is None else mine.combine(stat)

    def as_dict(self) -> dict[str, HistogramStat]:
        return {name: self._stats[name] for name in sorted(self._stats)}

    def __len__(self) -> int:
        return len(self._stats)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._stats))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Histograms):
            return self._stats == other._stats
        if isinstance(other, MappingABC):
            return self._stats == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Histograms({self.as_dict()!r})"


class Gauges:
    """Named last-value gauges.

    A gauge records the most recent value of something that can go up
    *or* down (queue depth, cells remaining, current makespan).  Merge
    semantics are last-writer-wins in merge order; because the parallel
    runner merges snapshots in deterministic cell order, merged gauge
    values equal the serial run's (the final cell's write wins in both).
    """

    __slots__ = ("_values", "_updates")

    def __init__(self, values: MappingABC[str, float] | None = None) -> None:
        self._values: dict[str, float] = {}
        self._updates: dict[str, int] = {}
        if values is not None:
            for name, value in values.items():
                self.set(name, value)

    def set(self, name: str, value: float) -> None:
        """Record the current value of ``name``."""
        self._values[name] = float(value)
        self._updates[name] = self._updates.get(name, 0) + 1

    def get(self, name: str, default: float | None = None) -> float | None:
        return self._values.get(name, default)

    def updates(self, name: str) -> int:
        """How many times ``name`` has been set (0 if never)."""
        return self._updates.get(name, 0)

    def merge(self, other: "Gauges | MappingABC[str, float]") -> None:
        """Fold another gauge set in: its values overwrite ours."""
        if isinstance(other, Gauges):
            for name, value in other._values.items():
                self._values[name] = value
                self._updates[name] = (
                    self._updates.get(name, 0) + other._updates.get(name, 1)
                )
        else:
            for name, value in other.items():
                self.set(name, value)

    def as_dict(self) -> dict[str, float]:
        return {name: self._values[name] for name in sorted(self._values)}

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Gauges):
            return self._values == other._values
        if isinstance(other, MappingABC):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"Gauges({self.as_dict()!r})"

"""Structured decision tracing with a zero-cost disabled default.

The paper's argument is carried by *decisions* — which pair wins a
Min-Min round, which way a tie breaks, which machine an iteration
freezes — so the instrumented hot paths emit one structured
:class:`TraceEvent` per decision.  Instrumentation follows one idiom::

    tracer = get_tracer()
    ...
    if tracer.enabled:              # single attribute test when disabled
        tracer.event("min-min.decision", task=task, machine=machine, ...)

The module-level current tracer defaults to the :data:`NULL_TRACER`
singleton (``enabled`` is ``False``), so uninstrumented callers pay one
truthiness check per decision and *nothing else* — no event objects, no
string formatting, no field dictionaries.  Enable collection with::

    with use_tracer(CollectingTracer()) as tracer:
        IterativeScheduler(MinMin()).run(etc)
    print(tracer.counters.get("decisions"))

Every :meth:`CollectingTracer.event` call also increments the counter
``events.<kind>``, so counter totals and event counts cannot drift
apart (asserted by the property suite).  Decision-level instrumentation
additionally increments the shared ``decisions`` counter.

Snapshots (:class:`ObsSnapshot`) are plain picklable dataclasses; the
parallel experiment runner ships one per worker process back to the
parent and merges them **in cell order**, which makes the merged stream
bit-identical to a serial run (see :mod:`repro.analysis.parallel`).
"""

from __future__ import annotations

import time
import uuid
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import (
    Counters,
    Gauges,
    HistogramStat,
    Histograms,
    TimerStat,
    Timers,
)
from repro.obs.spans import SpanContext, SpanRecord

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "ObsSnapshot",
    "SpanContext",
    "SpanRecord",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]


@dataclass(frozen=True)
class TraceEvent:
    """One structured record: a monotonic sequence number, a dotted
    ``kind`` (e.g. ``"min-min.decision"``) and free-form ``fields``."""

    seq: int
    kind: str
    fields: dict[str, object] = field(default_factory=dict)

    def get(self, name: str, default=None):
        return self.fields.get(name, default)


class Tracer:
    """Interface shared by the no-op and collecting tracers.

    ``enabled`` is the hot-path gate: emitters must check it before
    building event fields so a disabled tracer costs one attribute
    lookup per decision.
    """

    enabled: bool = False

    def event(self, kind: str, /, **fields) -> None:
        """Record one structured event (no-op when disabled).

        ``kind`` is positional-only so events may carry a field that is
        itself named ``kind`` (e.g. ``sim.dispatch``)."""

    def count(self, name: str, n: int = 1) -> None:
        """Increment a named counter (no-op when disabled)."""

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] | None = None
    ) -> None:
        """Fold one value into a named histogram (no-op when disabled)."""

    def gauge(self, name: str, value: float) -> None:
        """Record the current value of a named gauge (no-op when disabled)."""

    def span(self, kind: str, /, **fields):
        """Context manager timing its block under ``kind``; on exit the
        duration lands in the timers, one ``kind`` event is emitted
        (without the duration, keeping event streams deterministic) and
        one :class:`~repro.obs.spans.SpanRecord` is recorded."""
        return _NULL_SPAN

    def phase(self, kind: str, /, **fields):
        """Context manager recording a *span-only* region under ``kind``.

        Unlike :meth:`span` it emits **no** event, no counter and no
        timer — only a :class:`~repro.obs.spans.SpanRecord` — so phase
        boundaries can be adopted inside code whose event stream is
        byte-compared across runs and processes."""
        return _NULL_SPAN


class _NullSpan:
    """Reusable do-nothing context manager (allocation-free)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """The disabled default: every operation is a no-op."""

    enabled = False

    def __repr__(self) -> str:
        return "NullTracer()"


#: Shared disabled tracer (stateless, safe to reuse everywhere).
NULL_TRACER = NullTracer()


@dataclass(frozen=True)
class ObsSnapshot:
    """Picklable, immutable view of a tracer's state.

    This is the unit the parallel runner ships across process
    boundaries; ``events`` keep their origin-local sequence numbers and
    are re-sequenced on merge.
    """

    events: tuple[TraceEvent, ...]
    counters: dict[str, int]
    timers: dict[str, TimerStat]
    histograms: dict[str, HistogramStat] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    spans: tuple[SpanRecord, ...] = ()


class _Span:
    __slots__ = (
        "_tracer",
        "_kind",
        "_fields",
        "_emit",
        "_start",
        "_start_unix",
        "_seq",
        "_span_id",
        "_parent_id",
    )

    def __init__(
        self,
        tracer: "CollectingTracer",
        kind: str,
        fields: dict,
        emit: bool = True,
    ) -> None:
        self._tracer = tracer
        self._kind = kind
        self._fields = fields
        self._emit = emit

    def __enter__(self):
        tracer = self._tracer
        self._seq = tracer._next_span_seq()
        stack = tracer._span_stack
        self._parent_id = stack[-1] if stack else tracer._adopted_parent
        self._span_id = f"{tracer._span_prefix}:{self._seq}"
        tracer._span_ids.add(self._span_id)
        stack.append(self._span_id)
        self._start_unix = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        duration = time.perf_counter() - self._start
        tracer = self._tracer
        tracer._span_stack.pop()
        tracer._spans.append(
            SpanRecord(
                seq=self._seq,
                span_id=self._span_id,
                parent_id=self._parent_id,
                trace_id=tracer.trace_id,
                kind=self._kind,
                fields=self._fields,
                start_unix=self._start_unix,
                duration_s=duration,
            )
        )
        if self._emit:
            tracer.timers.record(self._kind, duration)
            tracer.event(self._kind, **self._fields)
        return False


class CollectingTracer(Tracer):
    """In-memory tracer: ordered events plus counters, timers and spans.

    Pass ``context=``\\ :class:`~repro.obs.spans.SpanContext` to adopt a
    cross-process identity: the tracer reuses the context's trace id
    and parents its root spans under the context's span id, which is
    how shard workers join the parent run's trace tree.
    """

    enabled = True

    def __init__(self, *, context: SpanContext | None = None) -> None:
        self._events: list[TraceEvent] = []
        self.counters = Counters()
        self.timers = Timers()
        self.histograms = Histograms()
        self.gauges = Gauges()
        if context is not None:
            self.trace_id = context.trace_id
            self._adopted_parent = context.span_id
        else:
            self.trace_id = uuid.uuid4().hex[:16]
            self._adopted_parent = None
        self._span_prefix = uuid.uuid4().hex[:8]
        self._spans: list[SpanRecord] = []
        self._span_stack: list[str] = []
        self._span_ids: set[str] = set()
        self._span_seq = 0

    def _next_span_seq(self) -> int:
        seq = self._span_seq
        self._span_seq += 1
        return seq

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(self._events)

    def events_of(self, kind: str) -> tuple[TraceEvent, ...]:
        """All collected events of one ``kind``, in emission order."""
        return tuple(e for e in self._events if e.kind == kind)

    def event(self, kind: str, /, **fields) -> None:
        self._events.append(TraceEvent(len(self._events), kind, fields))
        self.counters.inc(f"events.{kind}")

    def count(self, name: str, n: int = 1) -> None:
        self.counters.inc(name, n)

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] | None = None
    ) -> None:
        self.histograms.observe(name, value, buckets=buckets)

    def gauge(self, name: str, value: float) -> None:
        self.gauges.set(name, value)

    def span(self, kind: str, /, **fields):
        return _Span(self, kind, fields)

    def phase(self, kind: str, /, **fields):
        return _Span(self, kind, fields, emit=False)

    @property
    def spans(self) -> tuple[SpanRecord, ...]:
        """Completed spans in enter (seq) order."""
        return tuple(sorted(self._spans, key=lambda span: span.seq))

    def context(self) -> SpanContext:
        """The identity to ship to a worker: this trace id plus the
        currently-open span (the adopted parent when none is open)."""
        stack = self._span_stack
        span_id = stack[-1] if stack else self._adopted_parent
        return SpanContext(trace_id=self.trace_id, span_id=span_id)

    def snapshot(self) -> ObsSnapshot:
        return ObsSnapshot(
            events=tuple(self._events),
            counters=self.counters.as_dict(),
            timers=self.timers.as_dict(),
            histograms=self.histograms.as_dict(),
            gauges=self.gauges.as_dict(),
            spans=self.spans,
        )

    def merge_snapshot(self, snapshot: ObsSnapshot) -> None:
        """Fold a worker snapshot in, re-sequencing its events after the
        ones already collected (call in a deterministic order).

        Incoming spans are re-sequenced and rewritten onto this trace:
        their trace id becomes this tracer's, and any span whose parent
        is neither in the incoming snapshot nor a span this tracer
        issued (roots, or stale cross-run parents) is re-parented under
        the currently-open span.  Span ids are globally unique (each
        tracer stamps its own prefix), so internal parent links survive
        unchanged.
        """
        for event in snapshot.events:
            self._events.append(
                TraceEvent(len(self._events), event.kind, dict(event.fields))
            )
        self.counters.merge(snapshot.counters)
        self.timers.merge(snapshot.timers)
        self.histograms.merge(snapshot.histograms)
        self.gauges.merge(snapshot.gauges)
        if snapshot.spans:
            incoming = {span.span_id for span in snapshot.spans}
            stack = self._span_stack
            attach = stack[-1] if stack else self._adopted_parent
            for span in sorted(snapshot.spans, key=lambda s: s.seq):
                parent = span.parent_id
                if parent is None or (
                    parent not in incoming and parent not in self._span_ids
                ):
                    parent = attach
                self._span_ids.add(span.span_id)
                self._spans.append(
                    SpanRecord(
                        seq=self._next_span_seq(),
                        span_id=span.span_id,
                        parent_id=parent,
                        trace_id=self.trace_id,
                        kind=span.kind,
                        fields=dict(span.fields),
                        start_unix=span.start_unix,
                        duration_s=span.duration_s,
                    )
                )

    def clear(self) -> None:
        self._events.clear()
        self.counters = Counters()
        self.timers = Timers()
        self.histograms = Histograms()
        self.gauges = Gauges()
        self._spans.clear()
        self._span_ids.clear()
        del self._span_stack[:]
        self._span_seq = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __repr__(self) -> str:
        return (
            f"CollectingTracer(events={len(self._events)}, "
            f"counters={len(self.counters)}, timers={len(self.timers)})"
        )


# ----------------------------------------------------------------------
# Current-tracer plumbing
# ----------------------------------------------------------------------
_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-wide current tracer (default: :data:`NULL_TRACER`)."""
    return _current


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as current; returns the previous one."""
    global _current
    previous = _current
    _current = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` for the duration of the block, then restore."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)

"""JSONL export/import and human-readable rendering of trace state.

JSONL schema (one JSON object per line, stable key order):

* ``{"type": "event", "seq": int, "kind": str, "fields": {...}}``
* ``{"type": "span", "seq": int, "span_id": str, "parent_id":
  str | null, "trace_id": str, "kind": str, "fields": {...},
  "start_unix": float, "duration_s": float}``
* ``{"type": "counter", "name": str, "value": int}``
* ``{"type": "gauge", "name": str, "value": float}``
* ``{"type": "histogram", "name": str, "buckets": [...], "counts":
  [...], "count": int, "sum": float, "min": float, "max": float}``
* ``{"type": "timer", "name": str, "count": int, "total": float,
  "min": float, "max": float}``

Events come first (in sequence order), then spans (in span-seq
order), then counters, gauges, histograms and timers, each metric
section in sorted-name order, so exporting the same snapshot twice
yields byte-identical files.  Field values must
be JSON-encodable; the instrumentation emits only strings, numbers,
booleans, ``None`` and lists/tuples of those (tuples serialise as JSON
arrays).  :func:`records_to_snapshot` inverts the export: events,
counters, gauges, histograms and timers all round-trip exactly
(property-tested in ``tests/properties/test_obs_properties.py``).
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterable
from pathlib import Path

from repro.obs.metrics import HistogramStat, TimerStat
from repro.obs.spans import SpanRecord, span_from_dict, span_to_dict
from repro.obs.tracer import CollectingTracer, ObsSnapshot, TraceEvent

__all__ = [
    "event_to_dict",
    "span_to_record",
    "snapshot_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "records_to_snapshot",
    "format_event",
    "render_events",
]


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, float) and math.isnan(value):
        return None  # JSON has no NaN; SWA's undefined BI exports as null
    return value


def event_to_dict(event: TraceEvent) -> dict:
    """The JSONL object for one event (see module docstring schema)."""
    return {
        "type": "event",
        "seq": event.seq,
        "kind": event.kind,
        "fields": {k: _jsonable(v) for k, v in event.fields.items()},
    }


def span_to_record(span: SpanRecord) -> dict:
    """The JSONL object for one span (see module docstring schema)."""
    record = span_to_dict(span)
    record["fields"] = {k: _jsonable(v) for k, v in record["fields"].items()}
    record["type"] = "span"
    return record


def snapshot_to_jsonl(snapshot: ObsSnapshot | CollectingTracer) -> str:
    """Serialise a snapshot (or live tracer) to JSONL text."""
    if isinstance(snapshot, CollectingTracer):
        snapshot = snapshot.snapshot()
    lines = [json.dumps(event_to_dict(e), sort_keys=True) for e in snapshot.events]
    for span in sorted(snapshot.spans, key=lambda s: s.seq):
        lines.append(json.dumps(span_to_record(span), sort_keys=True))
    for name, value in snapshot.counters.items():
        lines.append(
            json.dumps(
                {"type": "counter", "name": name, "value": value}, sort_keys=True
            )
        )
    for name, value in snapshot.gauges.items():
        lines.append(
            json.dumps(
                {"type": "gauge", "name": name, "value": value}, sort_keys=True
            )
        )
    for name, stat in snapshot.histograms.items():
        lines.append(
            json.dumps(
                {
                    "type": "histogram",
                    "name": name,
                    "buckets": list(stat.buckets),
                    "counts": list(stat.counts),
                    "count": stat.count,
                    "sum": stat.sum,
                    "min": stat.min,
                    "max": stat.max,
                },
                sort_keys=True,
            )
        )
    for name, stat in snapshot.timers.items():
        lines.append(
            json.dumps(
                {
                    "type": "timer",
                    "name": name,
                    "count": stat.count,
                    "total": stat.total,
                    "min": stat.min,
                    "max": stat.max,
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(snapshot: ObsSnapshot | CollectingTracer, path: str | Path) -> int:
    """Write the snapshot as JSONL; returns the number of lines written."""
    text = snapshot_to_jsonl(snapshot)
    Path(path).write_text(text, encoding="utf-8")
    return text.count("\n")


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL export back into a list of record dicts."""
    records = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def records_to_snapshot(records: Iterable[dict]) -> ObsSnapshot:
    """Rebuild an :class:`ObsSnapshot` from parsed JSONL records.

    The inverse of :func:`snapshot_to_jsonl` (modulo JSON's tuple/list
    conflation: event fields that were tuples come back as lists, which
    matches how :func:`event_to_dict` compares streams).
    """
    events: list[TraceEvent] = []
    spans: list[SpanRecord] = []
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, HistogramStat] = {}
    timers: dict[str, TimerStat] = {}
    for record in records:
        kind = record.get("type")
        if kind == "event":
            events.append(
                TraceEvent(record["seq"], record["kind"], dict(record["fields"]))
            )
        elif kind == "span":
            spans.append(span_from_dict(record))
        elif kind == "counter":
            counters[record["name"]] = record["value"]
        elif kind == "gauge":
            gauges[record["name"]] = record["value"]
        elif kind == "histogram":
            histograms[record["name"]] = HistogramStat(
                buckets=tuple(record["buckets"]),
                counts=tuple(record["counts"]),
                count=record["count"],
                sum=record["sum"],
                min=record["min"],
                max=record["max"],
            )
        elif kind == "timer":
            timers[record["name"]] = TimerStat(
                count=record["count"],
                total=record["total"],
                min=record["min"],
                max=record["max"],
            )
        else:
            raise ValueError(f"unknown obs JSONL record type {kind!r}")
    events.sort(key=lambda e: e.seq)
    spans.sort(key=lambda s: s.seq)
    return ObsSnapshot(
        events=tuple(events),
        counters=counters,
        timers=timers,
        histograms=histograms,
        gauges=gauges,
        spans=tuple(spans),
    )


def format_event(event: TraceEvent) -> str:
    """One-line human rendering: ``[seq] kind  k=v k=v ...``."""
    parts = []
    for key, value in event.fields.items():
        if isinstance(value, float):
            rendered = "x" if math.isnan(value) else f"{value:g}"
        elif isinstance(value, (tuple, list)):
            rendered = ",".join(str(v) for v in value)
        else:
            rendered = str(value)
        parts.append(f"{key}={rendered}")
    fields = ("  " + " ".join(parts)) if parts else ""
    return f"[{event.seq:>4}] {event.kind:<28}{fields}"


def render_events(events: Iterable[TraceEvent]) -> str:
    """Multi-line rendering of an event stream (trace CLI output)."""
    return "\n".join(format_event(e) for e in events)

"""repro.obs — lightweight observability: tracing, metrics, ledger.

The subsystem turns the paper's prose-level decision narratives (which
machine wins a Min-Min round, which way a tie breaks, which machine an
iteration freezes) into first-class, assertable data:

* :class:`Tracer` / :class:`CollectingTracer` / :data:`NULL_TRACER` —
  structured span/event records with a no-op default, so instrumented
  hot paths cost one attribute check when tracing is disabled;
* :class:`SpanRecord` / :class:`SpanContext` + :func:`build_span_tree`
  — hierarchical spans with cross-process trace identity: a parent
  ships its :class:`SpanContext` to workers, the merged snapshots form
  one trace tree, and ``repro obs timeline`` renders it
  (:func:`render_timeline` / :func:`render_timeline_html`);
* :class:`Counters` / :class:`Timers` / :class:`Histograms` /
  :class:`Gauges` — monotonic / aggregatable / merge-deterministic;
* :class:`ObsSnapshot` + JSONL export — picklable state that the
  parallel experiment runner merges deterministically across workers
  (and :func:`records_to_snapshot` reads back);
* :class:`TimeSeriesLog` / :class:`GridSampler` — periodic
  ``repro-timeseries/1`` samples (throughput, cache hit rate, RSS,
  queue depth) streamed to JSONL while a grid run progresses;
* :class:`RunLedger` — the durable, append-only ``repro-ledger/1``
  record of every bench/study/compare/export/report invocation
  (``repro obs tail / summary / diff`` inspect it;
  :func:`follow_records` powers ``tail --follow``);
* :class:`ProgressReporter` — live stderr progress for long sweeps,
  rendered outside the event stream so traces stay byte-identical;
* ``python -m repro trace`` — replays a witness example and prints its
  decision trace.

See docs/observability.md for the event catalogue and all three JSONL
schemas (trace export, run ledger, time-series).
"""

from repro.obs.export import (
    event_to_dict,
    format_event,
    read_jsonl,
    records_to_snapshot,
    render_events,
    snapshot_to_jsonl,
    span_to_record,
    write_jsonl,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    RunLedger,
    build_record,
    config_hash,
    diff_records,
    follow_records,
    headline_metrics,
    summarize_records,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    TIME_BUCKETS,
    Counters,
    Gauges,
    HistogramStat,
    Histograms,
    TimerStat,
    Timers,
)
from repro.obs.progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressReporter,
    make_progress,
)
from repro.obs.spans import (
    SpanContext,
    SpanNode,
    SpanRecord,
    build_span_tree,
    span_from_dict,
    span_to_dict,
    spans_from_records,
    tree_shape,
)
from repro.obs.timeline import (
    render_timeline,
    render_timeline_html,
    write_timeline_html,
)
from repro.obs.timeseries import (
    TIMESERIES_SCHEMA,
    GridSampler,
    TimeSeriesLog,
    read_timeseries,
    rss_bytes,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    NullTracer,
    ObsSnapshot,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "ObsSnapshot",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "SpanRecord",
    "SpanContext",
    "SpanNode",
    "build_span_tree",
    "tree_shape",
    "spans_from_records",
    "span_to_dict",
    "span_from_dict",
    "Counters",
    "Timers",
    "TimerStat",
    "Histograms",
    "HistogramStat",
    "Gauges",
    "DEFAULT_BUCKETS",
    "TIME_BUCKETS",
    "event_to_dict",
    "snapshot_to_jsonl",
    "span_to_record",
    "write_jsonl",
    "read_jsonl",
    "records_to_snapshot",
    "format_event",
    "render_events",
    "TIMESERIES_SCHEMA",
    "TimeSeriesLog",
    "GridSampler",
    "read_timeseries",
    "rss_bytes",
    "render_timeline",
    "render_timeline_html",
    "write_timeline_html",
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "RunLedger",
    "build_record",
    "config_hash",
    "diff_records",
    "follow_records",
    "headline_metrics",
    "summarize_records",
    "ProgressReporter",
    "NullProgress",
    "NULL_PROGRESS",
    "make_progress",
]

"""repro.obs — lightweight observability: tracing, counters, timers.

The subsystem turns the paper's prose-level decision narratives (which
machine wins a Min-Min round, which way a tie breaks, which machine an
iteration freezes) into first-class, assertable data:

* :class:`Tracer` / :class:`CollectingTracer` / :data:`NULL_TRACER` —
  structured span/event records with a no-op default, so instrumented
  hot paths cost one attribute check when tracing is disabled;
* :class:`Counters` / :class:`Timers` — monotonic, aggregatable;
* :class:`ObsSnapshot` + JSONL export — picklable state that the
  parallel experiment runner merges deterministically across workers;
* ``python -m repro trace`` — replays a witness example and prints its
  decision trace.

See docs/observability.md for the event catalogue and JSONL schema.
"""

from repro.obs.export import (
    event_to_dict,
    format_event,
    read_jsonl,
    render_events,
    snapshot_to_jsonl,
    write_jsonl,
)
from repro.obs.metrics import Counters, TimerStat, Timers
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    NullTracer,
    ObsSnapshot,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "ObsSnapshot",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counters",
    "Timers",
    "TimerStat",
    "event_to_dict",
    "snapshot_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "format_event",
    "render_events",
]

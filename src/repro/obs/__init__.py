"""repro.obs — lightweight observability: tracing, metrics, ledger.

The subsystem turns the paper's prose-level decision narratives (which
machine wins a Min-Min round, which way a tie breaks, which machine an
iteration freezes) into first-class, assertable data:

* :class:`Tracer` / :class:`CollectingTracer` / :data:`NULL_TRACER` —
  structured span/event records with a no-op default, so instrumented
  hot paths cost one attribute check when tracing is disabled;
* :class:`Counters` / :class:`Timers` / :class:`Histograms` /
  :class:`Gauges` — monotonic / aggregatable / merge-deterministic;
* :class:`ObsSnapshot` + JSONL export — picklable state that the
  parallel experiment runner merges deterministically across workers
  (and :func:`records_to_snapshot` reads back);
* :class:`RunLedger` — the durable, append-only ``repro-ledger/1``
  record of every bench/study/compare/export/report invocation
  (``repro obs tail / summary / diff`` inspect it);
* :class:`ProgressReporter` — live stderr progress for long sweeps,
  rendered outside the event stream so traces stay byte-identical;
* ``python -m repro trace`` — replays a witness example and prints its
  decision trace.

See docs/observability.md for the event catalogue and both JSONL
schemas (trace export and run ledger).
"""

from repro.obs.export import (
    event_to_dict,
    format_event,
    read_jsonl,
    records_to_snapshot,
    render_events,
    snapshot_to_jsonl,
    write_jsonl,
)
from repro.obs.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    RunLedger,
    build_record,
    config_hash,
    diff_records,
    headline_metrics,
    summarize_records,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    TIME_BUCKETS,
    Counters,
    Gauges,
    HistogramStat,
    Histograms,
    TimerStat,
    Timers,
)
from repro.obs.progress import (
    NULL_PROGRESS,
    NullProgress,
    ProgressReporter,
    make_progress,
)
from repro.obs.tracer import (
    NULL_TRACER,
    CollectingTracer,
    NullTracer,
    ObsSnapshot,
    TraceEvent,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "CollectingTracer",
    "ObsSnapshot",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "Counters",
    "Timers",
    "TimerStat",
    "Histograms",
    "HistogramStat",
    "Gauges",
    "DEFAULT_BUCKETS",
    "TIME_BUCKETS",
    "event_to_dict",
    "snapshot_to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "records_to_snapshot",
    "format_event",
    "render_events",
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "RunLedger",
    "build_record",
    "config_hash",
    "diff_records",
    "headline_metrics",
    "summarize_records",
    "ProgressReporter",
    "NullProgress",
    "NULL_PROGRESS",
    "make_progress",
]
